type opts = {
  coalesced_layout : bool;
  batched_alloc : bool;
  tight_ready_ub : bool;
  wavefront_level_explore : bool;
  optional_stall_fraction : float;
  early_wavefront_termination : bool;
  per_wavefront_heuristic : bool;
  ready_list_limiting : [ `Off | `Min | `Mid ];
}

let opts_paper =
  {
    coalesced_layout = true;
    batched_alloc = true;
    tight_ready_ub = true;
    wavefront_level_explore = true;
    optional_stall_fraction = 0.25;
    early_wavefront_termination = true;
    per_wavefront_heuristic = true;
    ready_list_limiting = `Off;
  }

let opts_no_memory =
  { opts_paper with coalesced_layout = false; batched_alloc = false; tight_ready_ub = false }

let opts_no_divergence =
  {
    opts_paper with
    wavefront_level_explore = false;
    optional_stall_fraction = 1.0;
    early_wavefront_termination = false;
    per_wavefront_heuristic = false;
  }

type fault_rates = {
  lane_fault_rate : float;
  wavefront_hang_rate : float;
  reduction_drop_rate : float;
  mem_fault_rate : float;
}

let no_faults =
  {
    lane_fault_rate = 0.0;
    wavefront_hang_rate = 0.0;
    reduction_drop_rate = 0.0;
    mem_fault_rate = 0.0;
  }

(* A single headline rate expands into per-class rates: lane faults at
   the headline rate, memory-transaction replays and lost reduction
   messages at a quarter of it, and the rarer whole-wavefront hangs at a
   sixteenth. Reduction drops are per iteration (not per lane), so the
   quarter rate keeps them visible at drill rates. *)
let uniform_faults rate =
  let rate = Float.max 0.0 (Float.min 1.0 rate) in
  {
    lane_fault_rate = rate;
    wavefront_hang_rate = rate /. 16.0;
    reduction_drop_rate = rate /. 4.0;
    mem_fault_rate = rate /. 4.0;
  }

let faults_enabled f =
  f.lane_fault_rate > 0.0 || f.wavefront_hang_rate > 0.0
  || f.reduction_drop_rate > 0.0 || f.mem_fault_rate > 0.0

type t = {
  target : Machine.Target.t;
  num_wavefronts : int;
  cpu_ns_per_op : float;
  gpu_ns_per_op : float;
  mem_transaction_ns : float;
  launch_overhead_ns : float;
  copy_ns_per_word : float;
  sync_overhead_ns : float;
  alloc_call_ns : float;
  opts : opts;
  faults : fault_rates;
  fault_seed : int;
}

let default =
  {
    target = Machine.Target.vega20;
    num_wavefronts = 180;
    cpu_ns_per_op = 5.0;
    gpu_ns_per_op = 55.0;
    mem_transaction_ns = 18.0;
    launch_overhead_ns = 400_000.0;
    copy_ns_per_word = 1.0;
    sync_overhead_ns = 2_000.0;
    alloc_call_ns = 10_000.0;
    opts = opts_paper;
    faults = no_faults;
    fault_seed = 9001;
  }

let with_faults ?(seed = default.fault_seed) t faults = { t with faults; fault_seed = seed }

(* Splitmix-style finalizer over (seed, salt): well-spread derived seeds
   so consecutive retry attempts draw unrelated fault patterns, yet the
   whole family is replayable from the request's one seed. *)
let reseed_faults t ~salt =
  if salt = 0 then t
  else
    let mix z =
      let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
      let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
      Int64.logxor z (Int64.shift_right_logical z 31)
    in
    let z =
      mix (Int64.add (Int64.of_int t.fault_seed) (Int64.mul 0x9e3779b97f4a7c15L (Int64.of_int salt)))
    in
    { t with fault_seed = Int64.to_int (Int64.logand z 0x3fffffffffffffffL) }

let bench = { default with num_wavefronts = 6 }

let with_opts t opts = { t with opts }

let threads t = t.num_wavefronts * t.target.Machine.Target.wavefront_size
