(** Schedule cost functions.

    Pass 1 minimizes an occupancy-derived register-pressure cost built on
    APRP (Section II-A); pass 2 minimizes schedule length subject to the
    pass-1 RP cost as a constraint. RP costs are compared first by
    occupancy (more wavefronts is strictly better) and then by the sum of
    APRP values (a tie-break that prefers headroom within the same
    occupancy bucket). *)

type rp = { aprp_vgpr : int; aprp_sgpr : int; occupancy : int }

val rp_of_peaks : Machine.Occupancy.t -> vgpr:int -> sgpr:int -> rp
(** Apply APRP to each class peak and derive the occupancy. *)

val rp_of_tracker : Machine.Occupancy.t -> Rp_tracker.t -> rp

val compare_rp : rp -> rp -> int
(** Negative when the first cost is better. *)

val rp_scalar : rp -> int
(** Scalar encoding consistent with [compare_rp] (smaller is better),
    used where a single number is needed (pheromone deposit formula,
    statistics). *)

type t = { rp : rp; length : int }

val of_schedule : Machine.Occupancy.t -> Schedule.t -> t
(** Measure a schedule: RP via {!Rp_tracker} over its issue order, length
    in cycles. *)

val better_rp_then_length : t -> t -> bool
(** [better_rp_then_length a b]: is [a] strictly better under the
    two-pass objective (RP first, length as tie-break)? *)

val rp_to_string : rp -> string
val to_string : t -> string
