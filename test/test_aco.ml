let test_pheromone_basics () =
  let p = Aco.Pheromone.create ~n:4 ~initial:1.0 in
  Alcotest.(check int) "size" 4 (Aco.Pheromone.size p);
  Alcotest.(check (float 1e-9)) "initial" 1.0 (Aco.Pheromone.get p ~src:0 ~dst:1);
  Alcotest.(check (float 1e-9)) "virtual start row" 1.0 (Aco.Pheromone.get p ~src:(-1) ~dst:2);
  Aco.Pheromone.deposit p ~src:0 ~dst:1 0.5;
  Alcotest.(check (float 1e-9)) "deposit" 1.5 (Aco.Pheromone.get p ~src:0 ~dst:1);
  Aco.Pheromone.decay p 0.8;
  Alcotest.(check (float 1e-9)) "decay" 1.2 (Aco.Pheromone.get p ~src:0 ~dst:1);
  Alcotest.(check (float 1e-9)) "decay others" 0.8 (Aco.Pheromone.get p ~src:1 ~dst:2);
  Aco.Pheromone.reset p ~initial:2.0;
  Alcotest.(check (float 1e-9)) "reset" 2.0 (Aco.Pheromone.get p ~src:0 ~dst:1);
  Alcotest.(check (float 1e-6)) "total" (20.0 *. 2.0) (Aco.Pheromone.total p)

let test_pheromone_path_deposit () =
  let p = Aco.Pheromone.create ~n:3 ~initial:0.0 in
  Aco.Pheromone.deposit_path p [| 2; 0; 1 |] 1.0;
  Alcotest.(check (float 1e-9)) "start link" 1.0 (Aco.Pheromone.get p ~src:(-1) ~dst:2);
  Alcotest.(check (float 1e-9)) "2 -> 0" 1.0 (Aco.Pheromone.get p ~src:2 ~dst:0);
  Alcotest.(check (float 1e-9)) "0 -> 1" 1.0 (Aco.Pheromone.get p ~src:0 ~dst:1);
  Alcotest.(check (float 1e-9)) "unused link untouched" 0.0 (Aco.Pheromone.get p ~src:1 ~dst:0)

let test_pheromone_bounds () =
  let p = Aco.Pheromone.create ~n:3 ~initial:0.0 in
  Alcotest.check_raises "dst out of range" (Invalid_argument "Pheromone: out of range")
    (fun () -> ignore (Aco.Pheromone.get p ~src:0 ~dst:3))

let test_params_categories () =
  Alcotest.(check int) "small" 0 (Aco.Params.size_category 49);
  Alcotest.(check int) "medium" 1 (Aco.Params.size_category 50);
  Alcotest.(check int) "large" 2 (Aco.Params.size_category 100);
  Alcotest.(check int) "termination small" 1 (Aco.Params.termination_condition 10);
  Alcotest.(check int) "termination medium" 2 (Aco.Params.termination_condition 70);
  Alcotest.(check int) "termination large" 3 (Aco.Params.termination_condition 500)

(* Stall-policy decision table on a crafted state: a region whose only
   ready instruction would blow the target while a semi-ready exists. *)
let stall_fixture () =
  let g = Ddg.Graph.build (Tu.diamond_region ()) in
  let rp = Sched.Rp_tracker.create g in
  (g, rp)

let test_stall_policy_fits () =
  let _, rp = stall_fixture () in
  let rng = Support.Rng.create 1 in
  match
    Aco.Stall_policy.classify ~rng ~allow_optional:true ~base_probability:1.0 ~rp
      ~target_vgpr:10 ~target_sgpr:10 ~ready:[ 0 ] ~has_semi_ready:false
      ~optional_stalls_so_far:0
  with
  | Aco.Stall_policy.Schedule_from [ 0 ] -> ()
  | Aco.Stall_policy.Schedule_from _ | Aco.Stall_policy.Optional_stall
  | Aco.Stall_policy.Forced_breach ->
      Alcotest.fail "expected Schedule_from [0]"

let test_stall_policy_breach_paths () =
  let _, rp = stall_fixture () in
  let rng = Support.Rng.create 1 in
  (* target 0 VGPRs: everything breaches *)
  (match
     Aco.Stall_policy.classify ~rng ~allow_optional:true ~base_probability:1.0 ~rp
       ~target_vgpr:(-1) ~target_sgpr:(-1) ~ready:[ 1 ] ~has_semi_ready:true
       ~optional_stalls_so_far:0
   with
  | Aco.Stall_policy.Optional_stall -> ()
  | _ -> Alcotest.fail "expected Optional_stall when waiting can help");
  (match
     Aco.Stall_policy.classify ~rng ~allow_optional:true ~base_probability:1.0 ~rp
       ~target_vgpr:(-1) ~target_sgpr:(-1) ~ready:[ 1 ] ~has_semi_ready:false
       ~optional_stalls_so_far:0
   with
  | Aco.Stall_policy.Forced_breach -> ()
  | _ -> Alcotest.fail "expected Forced_breach when nothing is in flight");
  match
    Aco.Stall_policy.classify ~rng ~allow_optional:false ~base_probability:1.0 ~rp
      ~target_vgpr:(-1) ~target_sgpr:(-1) ~ready:[ 1 ] ~has_semi_ready:true
      ~optional_stalls_so_far:0
  with
  | Aco.Stall_policy.Forced_breach -> ()
  | _ -> Alcotest.fail "expected Forced_breach in a no-stall wavefront"

let run_ant mode g =
  let ant = Aco.Ant.create g Tu.test_params in
  let pheromone = Aco.Pheromone.create ~n:g.Ddg.Graph.n ~initial:1.0 in
  Aco.Ant.start ant ~rng:(Support.Rng.create 5) ~heuristic:Sched.Heuristic.Critical_path
    ~allow_optional_stalls:true mode;
  Aco.Ant.run_to_completion ant ~pheromone;
  ant

let prop_ant_pass1_valid =
  QCheck.Test.make ~name:"pass-1 ants build valid orders" ~count:60 (Tu.arb_graph ())
    (fun g ->
      let ant = run_ant Aco.Ant.Rp_pass g in
      Aco.Ant.status ant = Aco.Ant.Finished
      &&
      match Aco.Ant.schedule ant with
      | Some s -> Result.is_ok (Sched.Schedule.validate s ~latency_aware:false)
      | None -> false)

let prop_ant_pass2_valid_and_within_target =
  QCheck.Test.make ~name:"pass-2 ants respect latencies and targets" ~count:60
    (Tu.arb_graph ()) (fun g ->
      (* A generous target lets every ant finish; validity still checked. *)
      let ant = run_ant (Aco.Ant.Ilp_pass { target_vgpr = 1000; target_sgpr = 1000 }) g in
      Aco.Ant.status ant = Aco.Ant.Finished
      &&
      match Aco.Ant.schedule ant with
      | Some s ->
          Result.is_ok (Sched.Schedule.validate s ~latency_aware:true)
          && fst (Aco.Ant.rp_peaks ant) <= 1000
      | None -> false)

let prop_ant_dead_or_within_target =
  QCheck.Test.make ~name:"pass-2 ants never exceed a tight target" ~count:60
    (Tu.arb_graph ()) (fun g ->
      (* Tight target: ants either die or stay within it. *)
      let lbv = Ddg.Lower_bounds.register_pressure g Ir.Reg.Vgpr in
      let target = lbv + 1 in
      let ant = run_ant (Aco.Ant.Ilp_pass { target_vgpr = target; target_sgpr = 1000 }) g in
      match Aco.Ant.status ant with
      | Aco.Ant.Dead -> true
      | Aco.Ant.Finished -> fst (Aco.Ant.rp_peaks ant) <= target
      | Aco.Ant.Active -> false)

let test_ant_work_accumulates () =
  let g = Ddg.Graph.build (Tu.diamond_region ()) in
  let ant = run_ant Aco.Ant.Rp_pass g in
  Alcotest.(check bool) "work counted" true (Aco.Ant.work ant >= 3 * g.Ddg.Graph.n);
  Alcotest.(check int) "order complete" g.Ddg.Graph.n (Array.length (Aco.Ant.order ant))

let test_ant_step_requires_active () =
  let g = Ddg.Graph.build (Tu.diamond_region ()) in
  let ant = run_ant Aco.Ant.Rp_pass g in
  let pheromone = Aco.Pheromone.create ~n:g.Ddg.Graph.n ~initial:1.0 in
  Alcotest.check_raises "stepping a finished ant" (Invalid_argument "Ant.step: ant is not active")
    (fun () -> ignore (Aco.Ant.step ant ~pheromone))

let test_ant_kill () =
  let g = Ddg.Graph.build (Tu.diamond_region ()) in
  let ant = Aco.Ant.create g Tu.test_params in
  Aco.Ant.start ant ~rng:(Support.Rng.create 1) ~heuristic:Sched.Heuristic.Critical_path
    ~allow_optional_stalls:true Aco.Ant.Rp_pass;
  Aco.Ant.kill ant;
  Alcotest.(check bool) "killed" true (Aco.Ant.status ant = Aco.Ant.Dead);
  Alcotest.(check bool) "no schedule from dead ant" true (Aco.Ant.schedule ant = None)

let prop_seq_aco_final_valid =
  QCheck.Test.make ~name:"sequential ACO emits valid schedules" ~count:25
    (Tu.arb_graph ~max_size:25 ()) (fun g ->
      let r = Aco.Seq_aco.run ~params:Tu.test_params ~seed:3 Tu.occ g in
      Result.is_ok (Sched.Schedule.validate r.Aco.Seq_aco.schedule ~latency_aware:true))

let prop_seq_aco_never_worse_rp =
  QCheck.Test.make ~name:"ACO RP never worse than the heuristic's" ~count:25
    (Tu.arb_graph ~max_size:25 ()) (fun g ->
      let r = Aco.Seq_aco.run ~params:Tu.test_params ~seed:4 Tu.occ g in
      Sched.Cost.compare_rp r.Aco.Seq_aco.cost.Sched.Cost.rp
        r.Aco.Seq_aco.heuristic_cost.Sched.Cost.rp
      <= 0)

let prop_seq_aco_lb_respected =
  QCheck.Test.make ~name:"final length >= LB; hit_lower_bound consistent" ~count:25
    (Tu.arb_graph ~max_size:25 ()) (fun g ->
      let lb = Ddg.Lower_bounds.schedule_length g in
      let r = Aco.Seq_aco.run ~params:Tu.test_params ~seed:5 Tu.occ g in
      r.Aco.Seq_aco.cost.Sched.Cost.length >= lb
      && ((not r.Aco.Seq_aco.pass2.Aco.Seq_aco.hit_lower_bound)
         || r.Aco.Seq_aco.cost.Sched.Cost.length = lb))

let test_seq_aco_deterministic () =
  let g = Ddg.Graph.build (Tu.random_region 77) in
  let r1 = Aco.Seq_aco.run ~params:Tu.test_params ~seed:9 Tu.occ g in
  let r2 = Aco.Seq_aco.run ~params:Tu.test_params ~seed:9 Tu.occ g in
  Alcotest.(check int) "same final length" r1.Aco.Seq_aco.cost.Sched.Cost.length
    r2.Aco.Seq_aco.cost.Sched.Cost.length;
  Alcotest.(check int) "same iterations" r1.Aco.Seq_aco.pass2.Aco.Seq_aco.iterations
    r2.Aco.Seq_aco.pass2.Aco.Seq_aco.iterations

let test_seq_aco_improves_sort () =
  (* A latency-rich region where greedy leaves stalls on the table. *)
  let rng = Support.Rng.create 5 in
  let g = Ddg.Graph.build (Workload.Shapes.sort_pass rng ~items:12) in
  let params = { Tu.test_params with Aco.Params.ants_per_iteration = 64; max_iterations = 12 } in
  let r = Aco.Seq_aco.run ~params ~seed:3 Tu.occ g in
  Alcotest.(check bool) "no worse than heuristic length at equal RP" true
    (r.Aco.Seq_aco.cost.Sched.Cost.length
     <= r.Aco.Seq_aco.heuristic_cost.Sched.Cost.length
    || Sched.Cost.compare_rp r.Aco.Seq_aco.cost.Sched.Cost.rp
         r.Aco.Seq_aco.heuristic_cost.Sched.Cost.rp
       < 0)

let test_setup_invariants () =
  let g = Ddg.Graph.build (Tu.random_region 123) in
  let s = Aco.Setup.prepare Tu.occ g in
  Alcotest.(check bool) "initial RP no worse than AMD's" true
    (Sched.Cost.compare_rp s.Aco.Setup.pass1_initial_rp
       s.Aco.Setup.amd_cost.Sched.Cost.rp
    <= 0);
  Alcotest.(check bool) "LB below initial" true
    (Sched.Cost.compare_rp s.Aco.Setup.rp_lb s.Aco.Setup.pass1_initial_rp <= 0);
  let padded = Aco.Setup.pass2_initial s ~best_pass1_order:s.Aco.Setup.pass1_initial_order in
  Alcotest.(check bool) "padded initial valid" true (Tu.check_valid ~latency_aware:true padded);
  Alcotest.(check bool) "length LB holds" true
    (Sched.Schedule.length padded >= s.Aco.Setup.length_lb)

let prop_aco_within_exact_bounds =
  QCheck.Test.make ~name:"ACO length between exact optimum and the CP schedule" ~count:20
    (Tu.arb_graph ~max_size:10 ()) (fun g ->
      let opt = Sched.Brute_force.min_schedule_length g in
      let r = Aco.Seq_aco.run ~params:Tu.test_params ~seed:6 Tu.occ g in
      r.Aco.Seq_aco.cost.Sched.Cost.length >= opt)

let test_aco_reaches_exact_optimum () =
  (* Deterministic small instances where the search provably lands on the
     brute-force optimum (fixed generator and search seeds). *)
  List.iter
    (fun seed ->
      let g = Ddg.Graph.build (Tu.random_region ~max_size:11 seed) in
      if g.Ddg.Graph.n <= 12 then begin
        let opt = Sched.Brute_force.min_schedule_length g in
        let params = { Tu.test_params with Aco.Params.ants_per_iteration = 32 } in
        let r = Aco.Seq_aco.run ~params ~seed Tu.occ g in
        Alcotest.(check int)
          (Printf.sprintf "seed %d reaches the optimum" seed)
          opt r.Aco.Seq_aco.cost.Sched.Cost.length
      end)
    [ 1; 3; 4; 5; 8 ]


let prop_weighted_aco_valid =
  QCheck.Test.make ~name:"weighted-sum ACO emits valid schedules" ~count:20
    (Tu.arb_graph ~max_size:25 ()) (fun g ->
      let r = Aco.Weighted_aco.run ~params:Tu.test_params ~seed:7 Tu.occ g in
      Result.is_ok (Sched.Schedule.validate r.Aco.Weighted_aco.schedule ~latency_aware:true))

let test_weighted_vs_two_pass_on_pressure () =
  (* The design choice the paper made: on a register-hungry tile the
     two-pass search protects occupancy better than the weighted sum. *)
  let g = Ddg.Graph.build (Workload.Shapes.wide_accum (Support.Rng.create 5) ~accumulators:22 ~rounds:28) in
  let params = { Tu.test_params with Aco.Params.ants_per_iteration = 64 } in
  let two = Aco.Seq_aco.run ~params ~seed:3 Tu.occ g in
  let weighted = Aco.Weighted_aco.run ~params ~seed:3 Tu.occ g in
  Alcotest.(check bool) "two-pass occupancy at least matches weighted-sum" true
    (two.Aco.Seq_aco.cost.Sched.Cost.rp.Sched.Cost.occupancy
    >= weighted.Aco.Weighted_aco.cost.Sched.Cost.rp.Sched.Cost.occupancy)


let suite =
  [
    Alcotest.test_case "pheromone basics" `Quick test_pheromone_basics;
    Alcotest.test_case "pheromone path deposit" `Quick test_pheromone_path_deposit;
    Alcotest.test_case "pheromone bounds" `Quick test_pheromone_bounds;
    Alcotest.test_case "params categories" `Quick test_params_categories;
    Alcotest.test_case "stall policy: fits" `Quick test_stall_policy_fits;
    Alcotest.test_case "stall policy: breach paths" `Quick test_stall_policy_breach_paths;
    Alcotest.test_case "ant work accumulates" `Quick test_ant_work_accumulates;
    Alcotest.test_case "ant step requires active" `Quick test_ant_step_requires_active;
    Alcotest.test_case "ant kill" `Quick test_ant_kill;
    Alcotest.test_case "seq aco deterministic" `Quick test_seq_aco_deterministic;
    Alcotest.test_case "seq aco on sort region" `Quick test_seq_aco_improves_sort;
    Alcotest.test_case "setup invariants" `Quick test_setup_invariants;
    Alcotest.test_case "aco reaches exact optimum" `Quick test_aco_reaches_exact_optimum;
    Alcotest.test_case "weighted vs two-pass on pressure" `Quick test_weighted_vs_two_pass_on_pressure;
  ]
  @ Tu.qtests
      [
        prop_ant_pass1_valid;
        prop_ant_pass2_valid_and_within_target;
        prop_ant_dead_or_within_target;
        prop_seq_aco_final_valid;
        prop_seq_aco_never_worse_rp;
        prop_seq_aco_lb_respected;
        prop_aco_within_exact_bounds;
        prop_weighted_aco_valid;
      ]
