module A1 = Bigarray.Array1

type mode = Rp_pass | Ilp_pass of { target_vgpr : int; target_sgpr : int }

type status = Active | Finished | Dead

type op =
  | Selected of { instr : int; explored : bool }
  | Mandatory_stall
  | Optional_stall
  | Died

type event = { op : op; ready_scanned : int; succs_updated : int }

(* Region-wide analyses shared by every ant of a colony: the critical
   path, the interned register layout, and the transitive-closure bound
   on the ready-list size (Section V-A: per-thread arrays are sized by
   this bound, not by n). Computing these once per colony instead of
   once per lane removes the dominant cost of wavefront construction. *)
type shared = {
  s_graph : Ddg.Graph.t;
  s_cp : Ddg.Critpath.t;
  s_layout : Sched.Rp_tracker.layout;
  s_ready_ub : int;
}

let prepare_shared ?cp ?layout ?ready_ub graph =
  {
    s_graph = graph;
    s_cp = (match cp with Some c -> c | None -> Ddg.Critpath.compute graph);
    s_layout =
      (match layout with Some l -> l | None -> Sched.Rp_tracker.layout_of_graph graph);
    s_ready_ub =
      (match ready_ub with
      | Some ub -> ub
      | None -> Ddg.Closure.ready_list_upper_bound (Ddg.Closure.compute graph));
  }

(* The engine hands backends a [Region_ctx] whose analyses are exactly
   the ones a colony shares; reusing them keeps a dispatch race at one
   analysis pass per region instead of one per backend. *)
let shared_of_region_ctx (rc : Engine.Region_ctx.t) =
  prepare_shared ~cp:rc.Engine.Region_ctx.critpath ~layout:rc.Engine.Region_ctx.rp_layout
    ~ready_ub:rc.Engine.Region_ctx.ready_ub
    (Engine.Region_ctx.graph rc)

let shared_ready_ub shared = shared.s_ready_ub

type t = {
  graph : Ddg.Graph.t;
  params : Params.t;
  rl_order : Sched.Ready_list.t;  (* pass 1: latencies ignored *)
  rl_cycle : Sched.Ready_list.t;  (* pass 2: latency-aware *)
  rp : Sched.Rp_tracker.t;
  ctx : Sched.Heuristic.ctx;
  cand : int array;  (* scratch: candidate slice, ready order *)
  (* The unboxed data plane: one [Support.Fmat] per ant (or four rows of
     a pooled colony matrix), addressed by flat row bases. Row 0 is the
     selection scratch — tau^a * eta^b per candidate in columns
     [0..ub-1], the roulette total in column [ub] and the wheel
     accumulator in column [ub+1] (Fmat cells keep float sums unboxed,
     where a local [ref] may not be). Rows 1 and 2 hold eta^beta per
     instruction for the construction-state-independent heuristics
     (critical path and source order depend only on the region),
     precomputed at [create] so the selection loop is a raw table load;
     row 3 is scratch for the dynamic LUC heuristic's eta. *)
  fm : Support.Fmat.t;
  fd : Support.Fmat.mat;
      (* [fm]'s raw backing store: the selection loops read and write
         through the concrete bigarray type so the accesses compile to
         unboxed float64 loads/stores even without cross-module
         inlining ([-opaque] dev builds) *)
  score_base : int;
  eta_cp_base : int;
  eta_so_base : int;
  luc_base : int;
  mutable rng : Support.Rng.t;
  mutable heuristic : Sched.Heuristic.kind;
  mutable allow_optional : bool;
  mutable mode : mode;
  mutable status : status;
  mutable last : int;  (* previously selected instruction, -1 at start *)
  mutable slots : int array;  (* issue order; -1 marks a stall *)
  mutable n_slots : int;
  mutable n_optional : int;
  mutable work : int;
  (* last-step report, overwritten by each step (the divergence and
     memory models read these instead of a per-step event record) *)
  mutable last_rank : int;  (* Divergence path rank: 0 exploit, 1 explore,
                               2 mandatory stall, 3 optional stall, 4 death *)
  mutable last_instr : int;
  mutable last_explored : bool;
  mutable last_scanned : int;
  mutable last_succs : int;
}

let arena_demand shared =
  let ints =
    (2 * Sched.Ready_list.int_demand shared.s_graph)
    + Sched.Rp_tracker.int_demand shared.s_layout
  in
  (ints, 0 (* float state moved wholesale to the Fmat data plane *))

(* Rows/columns of one ant's slice of the score matrix: the four rows
   documented on [t], wide enough for both the n-entry eta tables and
   the ub+2-entry selection scratch. *)
let fmat_rows = 4

let fmat_demand shared =
  (fmat_rows, max shared.s_graph.Ddg.Graph.n (max 1 shared.s_ready_ub + 2))

let[@inline] pow_fast x e =
  (* The defaults (alpha = 1, beta = 2) are on the hot path; [Float.pow]
     costs more than the rest of the selection arithmetic combined.
     Inlined so the result never crosses a call boundary — a non-inlined
     float return is a minor-heap box per candidate in closure mode. *)
  if e = 1.0 then x
  else if e = 2.0 then x *. x
  else if e = 0.0 then 1.0
  else x ** e

let create ?shared ?arena ?fmat graph params =
  let shared =
    match shared with
    | Some s ->
        if s.s_graph != graph then invalid_arg "Ant.create: shared state is for another graph";
        s
    | None ->
        (* Stand-alone ants skip the closure: [n] is always a valid
           ready-list bound. *)
        {
          s_graph = graph;
          s_cp = Ddg.Critpath.compute graph;
          s_layout = Sched.Rp_tracker.layout_of_graph graph;
          s_ready_ub = graph.Ddg.Graph.n;
        }
  in
  let arena =
    match arena with
    | Some a -> a
    | None ->
        let ints, floats = arena_demand shared in
        Support.Arena.create ~ints ~floats
  in
  let n = graph.Ddg.Graph.n in
  let ub = max 1 shared.s_ready_ub in
  let rows, cols = fmat_demand shared in
  let fm, row0 =
    match fmat with
    | Some (fm, row0) ->
        if
          row0 < 0
          || row0 + rows > Support.Fmat.rows fm
          || Support.Fmat.cols fm < cols
        then invalid_arg "Ant.create: score matrix slice too small";
        (fm, row0)
    | None -> (Support.Fmat.create ~rows ~cols, 0)
  in
  let rp = Sched.Rp_tracker.create_in arena shared.s_layout in
  let ctx = Sched.Heuristic.make_ctx ~cp:shared.s_cp graph rp in
  let beta = params.Params.beta in
  let eta_cp_base = Support.Fmat.row_base fm (row0 + 1) in
  let eta_so_base = Support.Fmat.row_base fm (row0 + 2) in
  let fd = fm.Support.Fmat.data in
  let fill_eta_pow base kind =
    for i = 0 to n - 1 do
      A1.unsafe_set fd (base + i) (pow_fast (Sched.Heuristic.eta kind ctx i) beta)
    done
  in
  fill_eta_pow eta_cp_base Sched.Heuristic.Critical_path;
  fill_eta_pow eta_so_base Sched.Heuristic.Source_order;
  {
    graph;
    params;
    rl_order = Sched.Ready_list.create_in ~latency_aware:false arena graph;
    rl_cycle = Sched.Ready_list.create_in ~latency_aware:true arena graph;
    rp;
    ctx;
    cand = Array.make ub 0;
    fm;
    fd;
    score_base = Support.Fmat.row_base fm row0;
    eta_cp_base;
    eta_so_base;
    luc_base = Support.Fmat.row_base fm (row0 + 3);
    rng = Support.Rng.create 0;
    heuristic = params.Params.heuristic;
    allow_optional = true;
    mode = Rp_pass;
    status = Dead;
    last = -1;
    slots = Array.make (max 8 ((2 * n) + 8)) (-1);
    n_slots = 0;
    n_optional = 0;
    work = 0;
    last_rank = 4;
    last_instr = -1;
    last_explored = false;
    last_scanned = 0;
    last_succs = 0;
  }

let ready_list t = match t.mode with Rp_pass -> t.rl_order | Ilp_pass _ -> t.rl_cycle

let start t ~rng ~heuristic ~allow_optional_stalls mode =
  t.rng <- rng;
  t.heuristic <- heuristic;
  t.allow_optional <- allow_optional_stalls;
  t.mode <- mode;
  t.status <- Active;
  t.last <- -1;
  t.n_slots <- 0;
  t.n_optional <- 0;
  t.work <- 0;
  Sched.Rp_tracker.reset t.rp;
  Sched.Ready_list.reset (ready_list t)

let status t = t.status

(* In the ILP pass the guiding heuristic adapts to the remaining RP
   headroom: close to the target, closing live ranges matters more than
   chasing the critical path (otherwise most ants die against tight
   targets and the pass degenerates to its initial schedule). *)
let effective_heuristic t =
  match t.mode with
  | Rp_pass -> t.heuristic
  | Ilp_pass { target_vgpr; target_sgpr } ->
      let headroom_v = target_vgpr - Sched.Rp_tracker.current t.rp Ir.Reg.Vgpr in
      let headroom_s = target_sgpr - Sched.Rp_tracker.current t.rp Ir.Reg.Sgpr in
      if headroom_v <= 2 || headroom_s <= 8 then Sched.Heuristic.Last_use_count
      else t.heuristic

(* ACS-style biased selection: with probability q0 exploit (argmax of
   tau^alpha * eta^beta), otherwise explore (roulette wheel over the same
   values). *)

(* Selection over the candidate slice [t.cand.(0 .. m-1)]: fill the
   score row with tau^a * eta^b, then exploit (argmax, first maximum
   wins) or explore (roulette wheel). Every float lives in the Fmat —
   raw unboxed loads and stores throughout, no boxing, no allocation.
   The float-operation order matches the seed's list folds exactly, so
   the constructed schedules are byte-identical. *)
let select_slice t ~pheromone ~explored m =
  if m = 0 then invalid_arg "Ant.select: empty candidate list"
  else if m = 1 then t.cand.(0)
  else begin
    let heuristic = effective_heuristic t in
    let ph = (Pheromone.mat pheromone).Support.Fmat.data in
    let base = Pheromone.row_base pheromone ~src:t.last in
    let alpha = t.params.Params.alpha in
    let fd = t.fd in
    let sb = t.score_base in
    (* tau^alpha * eta^beta per candidate. For the static heuristics
       eta^beta comes from the [create]-time table rows (bit-identical
       to recomputing: eta depends only on the instruction); LUC's eta
       depends on the live set and is recomputed each step into the
       scratch row. *)
    (match heuristic with
    | Sched.Heuristic.Critical_path ->
        let tb = t.eta_cp_base in
        for k = 0 to m - 1 do
          let i = Array.unsafe_get t.cand k in
          let tau = A1.unsafe_get ph (base + i) in
          A1.unsafe_set fd (sb + k) (pow_fast tau alpha *. A1.unsafe_get fd (tb + i))
        done
    | Sched.Heuristic.Source_order ->
        let tb = t.eta_so_base in
        for k = 0 to m - 1 do
          let i = Array.unsafe_get t.cand k in
          let tau = A1.unsafe_get ph (base + i) in
          A1.unsafe_set fd (sb + k) (pow_fast tau alpha *. A1.unsafe_get fd (tb + i))
        done
    | Sched.Heuristic.Last_use_count ->
        let beta = t.params.Params.beta in
        Sched.Heuristic.fill_eta_mat heuristic t.ctx ~cand:t.cand ~n:m ~mat:t.fm
          ~base:t.luc_base;
        for k = 0 to m - 1 do
          let tau = A1.unsafe_get ph (base + Array.unsafe_get t.cand k) in
          A1.unsafe_set fd (sb + k)
            (pow_fast tau alpha *. pow_fast (A1.unsafe_get fd (t.luc_base + k)) beta)
        done);
    if explored then begin
      (* Wheel accumulators live in the score row past the candidate
         cells ([ub] and [ub+1]): Fmat stores keep the running sums
         unboxed where a local float [ref] may not be. *)
      let tot = sb + Array.length t.cand in
      let acc = tot + 1 in
      A1.unsafe_set fd tot 0.0;
      for k = 0 to m - 1 do
        A1.unsafe_set fd tot (A1.unsafe_get fd tot +. A1.unsafe_get fd (sb + k))
      done;
      let total = A1.unsafe_get fd tot in
      let u = Support.Rng.float t.rng in
      if total > 0.0 then begin
        (* Roulette wheel with early exit; like the seed's fold, the last
           candidate wins by default without a comparison (guarding
           against the accumulated sum falling short of [target] through
           rounding). *)
        let target = u *. total in
        A1.unsafe_set fd acc 0.0;
        let chosen = ref (m - 1) in
        let k = ref 0 in
        while !chosen = m - 1 && !k < m - 1 do
          A1.unsafe_set fd acc (A1.unsafe_get fd acc +. A1.unsafe_get fd (sb + !k));
          if A1.unsafe_get fd acc >= target then chosen := !k else incr k
        done;
        t.cand.(!chosen)
      end
      else
        (* Degenerate wheel: every value is zero (e.g. the row's
           pheromone underflowed), so the wheel would silently pick the
           first candidate every time. Fall back to a uniform pick,
           reusing the single draw the wheel consumes. *)
        t.cand.(min (m - 1) (int_of_float (u *. float_of_int m)))
    end
    else begin
      let bk = ref 0 in
      for k = 1 to m - 1 do
        if A1.unsafe_get fd (sb + k) > A1.unsafe_get fd (sb + !bk) then bk := k
      done;
      t.cand.(!bk)
    end
  end

let ensure_slot t =
  if t.n_slots >= Array.length t.slots then begin
    let bigger = Array.make (2 * Array.length t.slots) (-1) in
    Array.blit t.slots 0 bigger 0 t.n_slots;
    t.slots <- bigger
  end

let emit_instr t rl i =
  Sched.Ready_list.schedule rl i;
  Sched.Rp_tracker.schedule t.rp i;
  ensure_slot t;
  t.slots.(t.n_slots) <- i;
  t.n_slots <- t.n_slots + 1;
  t.last <- i;
  if Sched.Ready_list.finished rl then t.status <- Finished

let emit_stall t rl =
  Sched.Ready_list.stall rl;
  ensure_slot t;
  t.slots.(t.n_slots) <- -1;
  t.n_slots <- t.n_slots + 1

let finish_step t ~rank ~instr ~explored ~scanned ~succs =
  t.last_rank <- rank;
  t.last_instr <- instr;
  t.last_explored <- explored;
  t.last_scanned <- scanned;
  t.last_succs <- succs;
  t.work <- t.work + scanned + succs + 3

let ready_count t =
  if t.status <> Active then 0 else Sched.Ready_list.ready_count (ready_list t)

(* The allocation-free step. [force_explore] is -1 (ant draws its own
   coin), 0 (exploit) or 1 (explore); [ready_limit] is 0 for unlimited.
   The step's kind/cost lands in the [last_*] fields. *)
let step_hot t ~pheromone ~force_explore ~ready_limit =
  if t.status <> Active then invalid_arg "Ant.step: ant is not active";
  let rl = ready_list t in
  let rn = Sched.Ready_list.ready_count rl in
  (* Limiting applies to the RP pass only: in the ILP pass a truncated
     view could hide the only candidate that fits the RP target and
     kill the ant spuriously. *)
  let m =
    match t.mode with
    | Rp_pass when ready_limit >= 1 && ready_limit < rn -> ready_limit
    | Rp_pass | Ilp_pass _ -> rn
  in
  Sched.Ready_list.blit_ready rl t.cand m;
  (* The exploration coin is drawn before the mode dispatch (even for a
     mandatory stall) so the RNG stream is independent of the decision —
     part of the construction's byte-identity contract. *)
  let explored =
    if force_explore >= 0 then force_explore = 1
    else not (Support.Rng.bool t.rng t.params.Params.q0)
  in
  match t.mode with
  | Rp_pass ->
      (* Latencies ignored: the ready list is never empty while work
         remains. *)
      let i = select_slice t ~pheromone ~explored m in
      emit_instr t rl i;
      finish_step t
        ~rank:(if explored then 1 else 0)
        ~instr:i ~explored ~scanned:m ~succs:(Ddg.Graph.num_succs t.graph i)
  | Ilp_pass { target_vgpr; target_sgpr } ->
      if m = 0 then begin
        emit_stall t rl;
        finish_step t ~rank:2 ~instr:(-1) ~explored ~scanned:0 ~succs:0
      end
      else begin
        (* [Stall_policy.classify_slice]'s decision ladder, inlined as
           straight-line integer code: the variant result it returned
           was the hot loop's last per-step allocation. Filter, coin
           and ordering are identical — the single optional-stall coin
           is drawn under exactly the same conditions, so the RNG
           stream position matches the historical ladder bit for bit. *)
        let has_semi_ready = Sched.Ready_list.has_semi_ready rl in
        let fitting =
          Sched.Rp_tracker.filter_fits_prefix t.rp ~cand:t.cand ~n_cand:m ~target_vgpr
            ~target_sgpr
        in
        if fitting = 0 then
          if t.allow_optional && has_semi_ready then begin
            emit_stall t rl;
            t.n_optional <- t.n_optional + 1;
            finish_step t ~rank:3 ~instr:(-1) ~explored ~scanned:m ~succs:0
          end
          else begin
            t.status <- Dead;
            finish_step t ~rank:4 ~instr:(-1) ~explored ~scanned:m ~succs:0
          end
        else if
          t.allow_optional && has_semi_ready && fitting < m
          && Support.Rng.bool t.rng
               (t.params.Params.stall_base_probability
               *. (0.5 ** float_of_int t.n_optional))
        then begin
          emit_stall t rl;
          t.n_optional <- t.n_optional + 1;
          finish_step t ~rank:3 ~instr:(-1) ~explored ~scanned:m ~succs:0
        end
        else begin
          let i = select_slice t ~pheromone ~explored fitting in
          emit_instr t rl i;
          finish_step t
            ~rank:(if explored then 1 else 0)
            ~instr:i ~explored ~scanned:m ~succs:(Ddg.Graph.num_succs t.graph i)
        end
      end

let last_rank t = t.last_rank
let last_scanned t = t.last_scanned
let last_succs t = t.last_succs

let event_of_last t =
  let op =
    match t.last_rank with
    | 0 | 1 -> Selected { instr = t.last_instr; explored = t.last_explored }
    | 2 -> Mandatory_stall
    | 3 -> Optional_stall
    | _ -> Died
  in
  { op; ready_scanned = t.last_scanned; succs_updated = t.last_succs }

let step ?force_explore ?ready_limit t ~pheromone =
  let force_explore =
    match force_explore with None -> -1 | Some false -> 0 | Some true -> 1
  in
  let ready_limit = match ready_limit with None -> 0 | Some k -> max 0 k in
  step_hot t ~pheromone ~force_explore ~ready_limit;
  event_of_last t

let kill t = t.status <- Dead

let run_to_completion ?force_explore t ~pheromone =
  let fe = match force_explore with None -> -1 | Some false -> 0 | Some true -> 1 in
  while t.status = Active do
    step_hot t ~pheromone ~force_explore:fe ~ready_limit:0
  done

let slots t =
  let rec loop k acc =
    if k < 0 then acc
    else
      let s =
        if t.slots.(k) < 0 then Sched.Schedule.Stall else Sched.Schedule.Instr t.slots.(k)
      in
      loop (k - 1) (s :: acc)
  in
  loop (t.n_slots - 1) []

let order t =
  let count = ref 0 in
  for k = 0 to t.n_slots - 1 do
    if t.slots.(k) >= 0 then incr count
  done;
  let arr = Array.make !count 0 in
  let p = ref 0 in
  for k = 0 to t.n_slots - 1 do
    if t.slots.(k) >= 0 then begin
      arr.(!p) <- t.slots.(k);
      incr p
    end
  done;
  arr

let schedule t =
  if t.status <> Finished then None
  else
    let latency_aware = match t.mode with Rp_pass -> false | Ilp_pass _ -> true in
    match Sched.Schedule.of_slots t.graph ~latency_aware (slots t) with
    | Ok s -> Some s
    | Error _ -> None

let rp_peaks t =
  (Sched.Rp_tracker.peak t.rp Ir.Reg.Vgpr, Sched.Rp_tracker.peak t.rp Ir.Reg.Sgpr)

let length t = t.n_slots
let optional_stalls t = t.n_optional
let work t = t.work

(* Candidate pruning is a property of the ant's RP tracker; the ant only
   forwards the switch and the meters so drivers never reach into the
   tracker directly. *)
let set_prune t flag = Sched.Rp_tracker.set_prune t.rp flag
let prune_enabled t = Sched.Rp_tracker.prune_enabled t.rp
let scored_candidates t = Sched.Rp_tracker.scored_candidates t.rp
let pruned_candidates t = Sched.Rp_tracker.pruned_candidates t.rp
