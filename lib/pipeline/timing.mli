(** Compile-time accounting (Table 5).

    The suite's total compile time decomposes into a scheduler-independent
    base — C++ frontend work per benchmark plus per-instruction code
    generation (instruction selection, register allocation, encoding) —
    and the scheduling itself: the heuristic list scheduler everywhere,
    plus ACO wherever it is invoked (CPU-sequential or GPU-parallel).

    Constants are calibration points documented here, in simulated
    seconds; rocPRIM's heavily templated HIP C++ makes the frontend the
    dominant term, which is why even the sequential ACO "only" adds
    ~46% in the paper. *)

val frontend_ns_per_benchmark : float
(** Template instantiation + semantic analysis per benchmark TU. *)

val codegen_ns_per_instr : float
(** Non-scheduling backend cost per instruction. *)

val heuristic_schedule_ns : n:int -> float
(** Greedy list scheduling of a region. *)

type totals = {
  base_ns : float;  (** AMD scheduler only *)
  seq_ns : float;  (** base + sequential ACO *)
  par_ns : float;  (** base + parallel ACO on the GPU *)
}

val compile_totals : threshold:int -> Compile.suite_report -> totals
(** Totals over the suite's benchmarks (kernels shared by several
    benchmarks are recompiled per benchmark, as template instantiation
    does in rocPRIM). [threshold] gates pass-2 ACO times, as in the
    shipping configuration. *)

val pct_increase : float -> float -> float
(** [pct_increase base x] is [(x - base) / base * 100]. *)
