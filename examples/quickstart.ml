(* Quickstart: build a small region, inspect its DDG, schedule it with
   the AMD baseline and with two-pass ACO, and print both schedules.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Build a scheduling region with the IR builder: four loads feeding
     a combine tree, the classic latency-vs-pressure tension. *)
  let b = Ir.Builder.create ~name:"quickstart" in
  let base = Ir.Builder.sload b ~addr:[] () in
  let loads = List.init 4 (fun _ -> Ir.Builder.vload b ~addr:[ base ] ()) in
  let sum =
    match loads with
    | [ a; b'; c; d ] ->
        let ab = Ir.Builder.valu b [ a; b' ] in
        let cd = Ir.Builder.valu b [ c; d ] in
        Ir.Builder.valu b [ ab; cd ]
    | _ -> assert false
  in
  Ir.Builder.vstore b ~data:[ sum ] ~addr:[ base ] ();
  let region = Ir.Builder.finish b in
  print_string (Ir.Region.to_string region);
  print_newline ();

  (* 2. Build the data dependence graph and look at its bounds. *)
  let graph = Ddg.Graph.build region in
  let closure = Ddg.Closure.compute graph in
  Printf.printf "length lower bound: %d cycles\n" (Ddg.Lower_bounds.schedule_length graph);
  Printf.printf "ready-list upper bound (Section V-A): %d\n\n"
    (Ddg.Closure.ready_list_upper_bound closure);

  (* 3. Schedule with the AMD production-scheduler stand-in. *)
  let occ = Machine.Occupancy.default in
  let amd, amd_cost = Sched.Amd_scheduler.run_with_cost occ graph in
  Printf.printf "AMD baseline: %s\n%s\n" (Sched.Cost.to_string amd_cost)
    (Sched.Schedule.to_string amd);

  (* 4. Schedule with the two-pass ACO search. *)
  let result = Aco.Seq_aco.run ~seed:2024 occ graph in
  Printf.printf "ACO schedule: %s\n%s\n"
    (Sched.Cost.to_string result.Aco.Seq_aco.cost)
    (Sched.Schedule.to_string result.Aco.Seq_aco.schedule);
  Printf.printf "pass 1 iterations: %d, pass 2 iterations: %d\n"
    result.Aco.Seq_aco.pass1.Aco.Seq_aco.iterations
    result.Aco.Seq_aco.pass2.Aco.Seq_aco.iterations
