let test_reg_basics () =
  Alcotest.(check bool) "equal" true (Ir.Reg.equal (Ir.Reg.vgpr 3) (Ir.Reg.vgpr 3));
  Alcotest.(check bool) "class distinguishes" false (Ir.Reg.equal (Ir.Reg.vgpr 3) (Ir.Reg.sgpr 3));
  Alcotest.(check bool) "compare orders classes" true
    (Ir.Reg.compare (Ir.Reg.vgpr 999) (Ir.Reg.sgpr 0) < 0);
  Alcotest.(check string) "to_string v" "v3" (Ir.Reg.to_string (Ir.Reg.vgpr 3));
  Alcotest.(check string) "to_string s" "s7" (Ir.Reg.to_string (Ir.Reg.sgpr 7));
  Alcotest.(check bool) "hash consistent" true
    (Ir.Reg.hash (Ir.Reg.vgpr 5) = Ir.Reg.hash (Ir.Reg.vgpr 5))

let test_opcode_latencies () =
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Ir.Opcode.to_string k ^ " latency positive")
        true
        (Ir.Opcode.default_latency k >= 1))
    Ir.Opcode.all;
  Alcotest.(check bool) "loads slower than alu" true
    (Ir.Opcode.default_latency Ir.Opcode.Vmem_load > Ir.Opcode.default_latency Ir.Opcode.Valu);
  Alcotest.(check bool) "vload is memory" true (Ir.Opcode.is_memory Ir.Opcode.Vmem_load);
  Alcotest.(check bool) "valu is not memory" false (Ir.Opcode.is_memory Ir.Opcode.Valu)

let test_instr_make () =
  let i =
    Ir.Instr.make ~id:4 ~kind:Ir.Opcode.Valu ~defs:[ Ir.Reg.vgpr 1 ]
      ~uses:[ Ir.Reg.vgpr 0; Ir.Reg.sgpr 0 ] ()
  in
  Alcotest.(check int) "id" 4 i.Ir.Instr.id;
  Alcotest.(check int) "default latency" 1 i.Ir.Instr.latency;
  Alcotest.(check int) "defs of cls" 1 (List.length (Ir.Instr.defs_of_cls i Ir.Reg.Vgpr));
  Alcotest.(check int) "uses of cls sgpr" 1 (List.length (Ir.Instr.uses_of_cls i Ir.Reg.Sgpr));
  let renumbered = Ir.Instr.with_id i 9 in
  Alcotest.(check int) "with_id" 9 renumbered.Ir.Instr.id

let test_instr_rejects_bad () =
  Alcotest.check_raises "negative latency" (Invalid_argument "Instr.make: negative latency")
    (fun () ->
      ignore (Ir.Instr.make ~id:0 ~latency:(-1) ~kind:Ir.Opcode.Valu ~defs:[] ~uses:[] ()));
  Alcotest.check_raises "duplicate defs"
    (Invalid_argument "Instr.make: duplicate register in defs") (fun () ->
      ignore
        (Ir.Instr.make ~id:0 ~kind:Ir.Opcode.Valu
           ~defs:[ Ir.Reg.vgpr 1; Ir.Reg.vgpr 1 ]
           ~uses:[] ()))

let test_region_validation () =
  let i0 = Ir.Instr.make ~id:0 ~kind:Ir.Opcode.Valu ~defs:[ Ir.Reg.vgpr 0 ] ~uses:[] () in
  let bad = Ir.Instr.make ~id:5 ~kind:Ir.Opcode.Valu ~defs:[] ~uses:[] () in
  (match Ir.Region.create ~name:"x" [ i0; bad ] with
  | Error (Ir.Region.Bad_id { expected = 1; got = 5 }) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Bad_id");
  (match Ir.Region.create ~name:"x" [] with
  | Error Ir.Region.Empty_region -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Empty_region");
  match Ir.Region.create ~name:"x" ~live_out:[ Ir.Reg.vgpr 9 ] [ i0 ] with
  | Error (Ir.Region.Use_after_exit r) ->
      Alcotest.(check string) "dangling live-out" "v9" (Ir.Reg.to_string r)
  | Ok _ | Error _ -> Alcotest.fail "expected Use_after_exit"

let test_region_live_in () =
  let b = Ir.Builder.create ~name:"li" in
  let v0 = Ir.Builder.fresh_vgpr b in
  (* v0 used before being defined anywhere: live-in *)
  let x = Ir.Builder.valu b [ v0 ] in
  Ir.Builder.vstore b ~data:[ x ] ~addr:[ v0 ] ();
  let r = Ir.Builder.finish b in
  Alcotest.(check (list string)) "live-in detected" [ "v0" ]
    (List.map Ir.Reg.to_string (Ir.Region.live_in r))

let test_region_live_out () =
  let b = Ir.Builder.create ~name:"lo" in
  let x = Ir.Builder.valu b [] in
  Ir.Builder.mark_live_out b x;
  let r = Ir.Builder.finish b in
  Alcotest.(check bool) "live-out flagged" true (Ir.Region.is_live_out r x);
  Alcotest.(check bool) "other reg not live-out" false (Ir.Region.is_live_out r (Ir.Reg.vgpr 99))

let test_builder_ids_consecutive () =
  let r = Tu.diamond_region () in
  Array.iteri
    (fun i (ins : Ir.Instr.t) -> Alcotest.(check int) "id = index" i ins.Ir.Instr.id)
    (r : Ir.Region.t).Ir.Region.instrs

let prop_random_regions_valid =
  QCheck.Test.make ~name:"random regions validate" ~count:100 (Tu.arb_region ())
    (fun r -> Ir.Region.size r > 0)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_region_to_string () =
  let r = Tu.diamond_region () in
  let s = Ir.Region.to_string r in
  Alcotest.(check bool) "mentions name" true (contains ~needle:"diamond" s)

let suite =
  [
    Alcotest.test_case "reg basics" `Quick test_reg_basics;
    Alcotest.test_case "opcode latencies" `Quick test_opcode_latencies;
    Alcotest.test_case "instr make" `Quick test_instr_make;
    Alcotest.test_case "instr rejects bad input" `Quick test_instr_rejects_bad;
    Alcotest.test_case "region validation" `Quick test_region_validation;
    Alcotest.test_case "region live-in" `Quick test_region_live_in;
    Alcotest.test_case "region live-out" `Quick test_region_live_out;
    Alcotest.test_case "builder ids" `Quick test_builder_ids_consecutive;
    Alcotest.test_case "region to_string" `Quick test_region_to_string;
  ]
  @ Tu.qtests [ prop_random_regions_valid ]
