(* Bechamel micro-benchmarks of the core operations: the data the cost
   models abstract over. One Test.make per primitive. *)

open Bechamel
open Toolkit

let region = lazy (Workload.Shapes.transform (Support.Rng.create 9) ~unroll:16 ~chain:4)
let graph = lazy (Ddg.Graph.build (Lazy.force region))

let test_ddg_build =
  Test.make ~name:"ddg_build"
    (Staged.stage (fun () -> ignore (Ddg.Graph.build (Lazy.force region))))

let test_closure =
  Test.make ~name:"transitive_closure"
    (Staged.stage (fun () -> ignore (Ddg.Closure.compute (Lazy.force graph))))

let test_critpath =
  Test.make ~name:"critical_path"
    (Staged.stage (fun () -> ignore (Ddg.Critpath.compute (Lazy.force graph))))

let test_rp_tracking =
  Test.make ~name:"rp_tracking"
    (Staged.stage (fun () ->
         let g = Lazy.force graph in
         let t = Sched.Rp_tracker.create g in
         Array.iter (Sched.Rp_tracker.schedule t) (Ddg.Topo.order g)))

let test_list_schedule =
  Test.make ~name:"list_schedule_cp"
    (Staged.stage (fun () ->
         ignore (Sched.List_scheduler.run (Lazy.force graph) Sched.Heuristic.Critical_path)))

let test_one_ant =
  Test.make ~name:"one_ant_pass2"
    (Staged.stage
       (let g = Lazy.force graph in
        let params = Aco.Params.default in
        let ant = Aco.Ant.create g params in
        let pheromone = Aco.Pheromone.create ~n:g.Ddg.Graph.n ~initial:1.0 in
        let rng = Support.Rng.create 4 in
        fun () ->
          Aco.Ant.start ant ~rng:(Support.Rng.split rng) ~heuristic:Sched.Heuristic.Critical_path
            ~allow_optional_stalls:true
            (Aco.Ant.Ilp_pass { target_vgpr = 256; target_sgpr = 800 });
          Aco.Ant.run_to_completion ant ~pheromone))

let test_wavefront_iteration =
  Test.make ~name:"wavefront_iteration"
    (Staged.stage
       (let g = Lazy.force graph in
        let config = { Gpusim.Config.bench with Gpusim.Config.num_wavefronts = 1 } in
        let w =
          Gpusim.Wavefront.create config g Aco.Params.default
            ~heuristic:Sched.Heuristic.Critical_path ~allow_optional_stalls:true
        in
        let pheromone = Aco.Pheromone.create ~n:g.Ddg.Graph.n ~initial:1.0 in
        let rng = Support.Rng.create 4 in
        fun () ->
          ignore
            (Gpusim.Wavefront.run_iteration w ~rng ~mode:Aco.Ant.Rp_pass ~pheromone)))

let tests =
  Test.make_grouped ~name:"core"
    [
      test_ddg_build;
      test_closure;
      test_critpath;
      test_rp_tracking;
      test_list_schedule;
      test_one_ant;
      test_wavefront_iteration;
    ]

type row = { name : string; ns_per_run : float; minor_words_per_run : float }

(* One benchmark run measured against two responders: wall clock and
   minor-heap allocation. Bechamel samples both from the same raw runs,
   so the columns describe the same executions. *)
let measure () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock; Instance.minor_allocated ] tests in
  let estimate results name =
    match Hashtbl.find_opt results name with
    | Some ols -> (
        match Analyze.OLS.estimates ols with Some (t :: _) -> t | Some [] | None -> nan)
    | None -> nan
  in
  let times = Analyze.all ols Instance.monotonic_clock raw in
  let allocs = Analyze.all ols Instance.minor_allocated raw in
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) times [] in
  List.map
    (fun name ->
      {
        name;
        ns_per_run = estimate times name;
        minor_words_per_run = estimate allocs name;
      })
    (List.sort compare names)

(* Allocation budget of the construct-schedule inner loop. With the
   unboxed data plane (scores, eta^beta tables and roulette state all
   living in pooled [Support.Fmat] rows, accessed through the concrete
   bigarray type so no float boxes even under [-opaque]) the loop
   allocates only per-iteration bookkeeping — outcome record, finished
   list, RNG splits — amortized over every ant step of the iteration:
   ~1 minor word per step measured. The ceiling keeps generous headroom
   over that so it trips on a real regression (a boxed float sneaking
   back into the selection loop costs 3-4 words per step on its own),
   not on noise. *)
let alloc_ceiling = 16.0

let alloc_gate () =
  let g = Lazy.force graph in
  let config = { Gpusim.Config.bench with Gpusim.Config.num_wavefronts = 1 } in
  let w =
    Gpusim.Wavefront.create config g Aco.Params.default
      ~heuristic:Sched.Heuristic.Critical_path ~allow_optional_stalls:true
  in
  let pheromone = Aco.Pheromone.create ~n:g.Ddg.Graph.n ~initial:1.0 in
  let rng = Support.Rng.create 4 in
  (* Warm-up iteration so one-time setup is not charged to the loop. *)
  ignore (Gpusim.Wavefront.run_iteration w ~rng ~mode:Aco.Ant.Rp_pass ~pheromone);
  let steps = ref 0 in
  let before = Support.Perfcount.minor_words () in
  for _ = 1 to 20 do
    let o = Gpusim.Wavefront.run_iteration w ~rng ~mode:Aco.Ant.Rp_pass ~pheromone in
    steps := !steps + o.Gpusim.Wavefront.ant_steps
  done;
  let words = Support.Perfcount.minor_words () -. before in
  let per_step = if !steps = 0 then 0.0 else words /. float_of_int !steps in
  (per_step, !steps, words)

(* Cycles per scheduled instruction of the wavefront hot loop: the
   run_iteration batch timed on the monotonic clock and normalized per
   ant step (one ant step schedules exactly one instruction). At the
   1 GHz reference clock the cost models already use, nanoseconds read
   directly as cycles, so the per-step figure *is* the ROADMAP's
   cycles-per-scheduled-instruction series; `bench check` tracks it
   against the committed history. Min-of-trials, like the obs gate, so
   scheduler noise does not read as regression. *)
let hot_loop () =
  let g = Lazy.force graph in
  let config = { Gpusim.Config.bench with Gpusim.Config.num_wavefronts = 1 } in
  let w =
    Gpusim.Wavefront.create config g Aco.Params.default
      ~heuristic:Sched.Heuristic.Critical_path ~allow_optional_stalls:true
  in
  let pheromone = Aco.Pheromone.create ~n:g.Ddg.Graph.n ~initial:1.0 in
  let rng = Support.Rng.create 4 in
  (* Warm-up iteration so one-time setup is not charged to the loop. *)
  ignore (Gpusim.Wavefront.run_iteration w ~rng ~mode:Aco.Ant.Rp_pass ~pheromone);
  let best_per_step = ref infinity and best_per_iter = ref infinity in
  let steps_seen = ref 0 in
  for _ = 1 to 8 do
    let steps = ref 0 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to 10 do
      let o = Gpusim.Wavefront.run_iteration w ~rng ~mode:Aco.Ant.Rp_pass ~pheromone in
      steps := !steps + o.Gpusim.Wavefront.ant_steps
    done;
    let ns = (Unix.gettimeofday () -. t0) *. 1e9 in
    if !steps > 0 then begin
      let per_step = ns /. float_of_int !steps in
      if per_step < !best_per_step then best_per_step := per_step;
      let per_iter = ns /. 10.0 in
      if per_iter < !best_per_iter then best_per_iter := per_iter;
      steps_seen := !steps
    end
  done;
  let finite v = if v = infinity then 0.0 else v in
  (finite !best_per_step, finite !best_per_iter, !steps_seen)

(* Observability overhead on the wavefront hot loop: the same batch of
   run_iteration calls timed with everything off and with the full
   stack on — flight recorder, metrics registry, a live structured-log
   entry and a wall-clock span per iteration — min-of-trials so
   scheduler noise does not read as overhead. The ceiling is the
   observability contract: the whole stack must cost less than 10% of
   the loop it instruments. *)
let obs_ceiling_pct = 10.0

let obs_overhead () =
  let g = Lazy.force graph in
  let config = { Gpusim.Config.bench with Gpusim.Config.num_wavefronts = 1 } in
  let make ~traced =
    let w =
      Gpusim.Wavefront.create config g Aco.Params.default
        ~heuristic:Sched.Heuristic.Critical_path ~allow_optional_stalls:true
    in
    let trace = if traced then Obs.Trace.create () else Obs.Trace.null in
    let log = if traced then Obs.Log.create () else Obs.Log.null in
    if traced then
      Gpusim.Wavefront.set_obs w ~trace ~metrics:(Obs.Metrics.create ()) ~track:2
        ~obs_cursor:(Array.make 2 0.0) ~simd_cursor:(Array.make 1 0.0) ~simd:0;
    let pheromone = Aco.Pheromone.create ~n:g.Ddg.Graph.n ~initial:1.0 in
    let rng = Support.Rng.create 4 in
    (* Warm-up iteration so one-time setup is not charged to the loop. *)
    ignore (Gpusim.Wavefront.run_iteration w ~rng ~mode:Aco.Ant.Rp_pass ~pheromone);
    let batch () =
      let t0 = Unix.gettimeofday () in
      for i = 1 to 10 do
        if traced then begin
          let wt0 = Obs.Trace.wall_now trace in
          ignore
            (Gpusim.Wavefront.run_iteration w ~rng ~mode:Aco.Ant.Rp_pass ~pheromone);
          Obs.Trace.span trace ~track:Obs.Trace.wall_track_base ~name:"iteration"
            ~ts:wt0
            ~dur:(Obs.Trace.wall_now trace -. wt0);
          Obs.Log.debug log "bench.iteration" [ ("i", Obs.Log.Int i) ]
        end
        else
          ignore
            (Gpusim.Wavefront.run_iteration w ~rng ~mode:Aco.Ant.Rp_pass ~pheromone)
      done;
      (Unix.gettimeofday () -. t0) *. 1e9 /. 10.0
    in
    batch
  in
  (* Interleave the trials: timing one full mode after the other reads
     cache/frequency warm-up as 20%+ "overhead" in either direction. *)
  let run_untraced = make ~traced:false and run_traced = make ~traced:true in
  let untraced_ns = ref infinity and traced_ns = ref infinity in
  for _ = 1 to 8 do
    let u = run_untraced () in
    if u < !untraced_ns then untraced_ns := u;
    let t = run_traced () in
    if t < !traced_ns then traced_ns := t
  done;
  let overhead_pct =
    if !untraced_ns > 0.0 then (!traced_ns /. !untraced_ns -. 1.0) *. 100.0 else 0.0
  in
  (!untraced_ns, !traced_ns, overhead_pct)

(* Prune gate: the "seq-prune" backend must be observationally identical
   to "seq" — same schedules, same costs — while demonstrably skipping
   fit evaluations via the min-register lower bounds. Each row runs the
   full two-pass engine over one region shape with both backends on
   identical contexts (same params, seed, budget) and checks three
   contracts:
   - byte-identical final schedules and costs (soundness: the bounds
     only dismiss candidates whose fit evaluation would have failed, so
     the constructed schedules and the RNG streams never diverge);
   - meter conservation: every pass-2 candidate is either fit-evaluated
     or pruned, so scored(off) = scored(on) + pruned(on);
   - the pruner actually fires across the suite (pruned > 0 in
     aggregate), i.e. the capability is not silently a no-op. *)
type prune_row = {
  pg_name : string;
  pg_identical : bool;
  pg_scored_off : int;
  pg_scored_on : int;
  pg_pruned : int;
}

(* Tight-target phase. The engine derives pass-2 targets from its own
   pass-1 winner, whose APRP rounding leaves slack, so the bounds rarely
   bind inside a two-pass run. To prove the pruner is {e live} (not a
   silently disarmed no-op), drive single ants under externally tight
   ILP targets — one VGPR below the critical-path list schedule's peak —
   where the fit filter engages on most steps. Twin RNG streams, prune
   off vs on: the constructed orders and statuses must match run for
   run, and the prune-on ant must actually dismiss candidates. *)
let tight_row name graph seed ~mode =
  let params = Aco.Params.default in
  (* Arm the static Chen bounds too: stand-alone ants default to a
     closure-less layout whose [min_lb] tables are zero. *)
  let closure = Ddg.Closure.compute graph in
  let shared =
    Aco.Ant.prepare_shared ~layout:(Sched.Rp_tracker.layout_of_graph ~closure graph) graph
  in
  let runs = 64 in
  let run ~prune =
    let ant = Aco.Ant.create ~shared graph params in
    Aco.Ant.set_prune ant prune;
    let pheromone = Aco.Pheromone.create ~n:graph.Ddg.Graph.n ~initial:1.0 in
    let rng = Support.Rng.create seed in
    let outcomes = ref [] in
    for _ = 1 to runs do
      Aco.Ant.start ant ~rng:(Support.Rng.split rng)
        ~heuristic:Sched.Heuristic.Critical_path ~allow_optional_stalls:true mode;
      Aco.Ant.run_to_completion ant ~pheromone;
      outcomes := (Aco.Ant.status ant, Array.copy (Aco.Ant.order ant)) :: !outcomes
    done;
    (!outcomes, Aco.Ant.scored_candidates ant, Aco.Ant.pruned_candidates ant)
  in
  let outcomes_off, scored_off, pruned_off = run ~prune:false in
  let outcomes_on, scored_on, pruned_on = run ~prune:true in
  {
    pg_name = name;
    pg_identical = outcomes_off = outcomes_on && pruned_off = 0;
    pg_scored_off = scored_off;
    pg_scored_on = scored_on;
    pg_pruned = pruned_on;
  }

(* A producer-heavy region where the bounds genuinely bind: [items]
   loads addressed off the scalar base alone — each certainly opens a
   VGPR and can close nothing, so its [min_delta] is +1 — feeding a fold
   chain whose every step closes two values. Under a VGPR target a few
   registers wide, an ant must interleave loads with folds; whenever
   pressure sits at the target, every still-ready load fails the defs
   fast path and the dynamic bound dismisses it before any
   [compute_effects] scan. Real workload shapes close registers almost
   everywhere (their loads consume a VGPR lane address), which is
   exactly why the pruner needs this shape to prove it is live. *)
let producer_burst ~items =
  let b = Ir.Builder.create ~name:"producer_burst" in
  let base = Ir.Builder.sload b ~name:"s_load_args" ~addr:[] () in
  let loads = List.init items (fun _ -> Ir.Builder.vload b ~addr:[ base ] ()) in
  let acc =
    List.fold_left
      (fun acc x -> Ir.Builder.valu b [ acc; x ])
      (List.hd loads) (List.tl loads)
  in
  Ir.Builder.vstore b ~data:[ acc ] ~addr:[ base ] ();
  Ir.Builder.finish b

let prune_gate () =
  let shapes =
    [
      ("transform", Workload.Shapes.transform (Support.Rng.create 9) ~unroll:16 ~chain:4);
      ( "wide_accum",
        Workload.Shapes.wide_accum (Support.Rng.create 11) ~accumulators:24 ~rounds:6 );
      ("matmul_tile", Workload.Shapes.matmul_tile (Support.Rng.create 7) ~m:6 ~k:8);
    ]
  in
  (* Smaller colony than the compile default: the gate exercises the
     same code paths at a fraction of the wall time. *)
  let params = { Aco.Params.default with ants_per_iteration = 32; max_iterations = 8 } in
  let ctx = { Engine.Backend.null_ctx with Engine.Backend.params; seed = 5 } in
  let tight_rows =
    List.map
      (fun (name, items, tv) ->
        tight_row name (Ddg.Graph.build (producer_burst ~items)) 17
          ~mode:(Aco.Ant.Ilp_pass { target_vgpr = tv; target_sgpr = 4 }))
      [ ("burst16+tight", 16, 4); ("burst32+tight", 32, 6) ]
  in
  tight_rows
  @ List.map
    (fun (name, region) ->
      let rc = Engine.Region_ctx.of_region Machine.Occupancy.default region in
      let off = Engine.Two_pass.run Aco.Seq_aco.backend ctx rc in
      let on = Engine.Two_pass.run Aco.Seq_aco.prune_backend ctx rc in
      let same_schedule (a : Sched.Schedule.t) (b : Sched.Schedule.t) =
        a.Sched.Schedule.slots = b.Sched.Schedule.slots
        && a.Sched.Schedule.cycle_of = b.Sched.Schedule.cycle_of
      in
      let identical =
        same_schedule off.Engine.Types.schedule on.Engine.Types.schedule
        && off.Engine.Types.cost = on.Engine.Types.cost
        && off.Engine.Types.rp_target = on.Engine.Types.rp_target
        && same_schedule off.Engine.Types.pass2_initial on.Engine.Types.pass2_initial
        && off.Engine.Types.pass1.Engine.Types.best_costs
           = on.Engine.Types.pass1.Engine.Types.best_costs
        && off.Engine.Types.pass2.Engine.Types.best_costs
           = on.Engine.Types.pass2.Engine.Types.best_costs
      in
      let scored p = p.Engine.Types.scored_candidates in
      {
        pg_name = name;
        pg_identical = identical;
        pg_scored_off =
          scored off.Engine.Types.pass1 + scored off.Engine.Types.pass2;
        pg_scored_on = scored on.Engine.Types.pass1 + scored on.Engine.Types.pass2;
        pg_pruned =
          on.Engine.Types.pass1.Engine.Types.pruned_candidates
          + on.Engine.Types.pass2.Engine.Types.pruned_candidates;
      })
    shapes

let run () =
  print_endline "Micro-benchmarks (bechamel; monotonic clock, minor words):";
  let rows = measure () in
  List.iter
    (fun r ->
      Printf.printf "  %-28s %12.0f ns/run %12.1f mnr-words/run\n" r.name r.ns_per_run
        r.minor_words_per_run)
    rows;
  print_newline ();
  rows
