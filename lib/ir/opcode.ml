type kind =
  | Valu
  | Valu_trans
  | Salu
  | Vmem_load
  | Vmem_store
  | Smem_load
  | Lds
  | Branch
  | Export

let default_latency = function
  | Valu -> 1
  | Valu_trans -> 4
  | Salu -> 1
  | Vmem_load -> 40
  | Vmem_store -> 1
  | Smem_load -> 16
  | Lds -> 8
  | Branch -> 1
  | Export -> 1

let to_string = function
  | Valu -> "v_alu"
  | Valu_trans -> "v_trans"
  | Salu -> "s_alu"
  | Vmem_load -> "v_load"
  | Vmem_store -> "v_store"
  | Smem_load -> "s_load"
  | Lds -> "lds"
  | Branch -> "branch"
  | Export -> "export"

let equal (a : kind) b = a = b

let all = [ Valu; Valu_trans; Salu; Vmem_load; Vmem_store; Smem_load; Lds; Branch; Export ]

let of_string s = List.find_opt (fun k -> String.equal (to_string k) s) all

let is_memory = function
  | Vmem_load | Vmem_store | Smem_load | Lds -> true
  | Valu | Valu_trans | Salu | Branch | Export -> false
