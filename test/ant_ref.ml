(* Reference ant: the original list-based implementation, kept verbatim
   (modulo the shared roulette-degenerate fix) as the differential-test
   oracle for the arena-backed [Aco.Ant]. It allocates freely and uses
   only the retained list-level public APIs — [Sched.Ready_list]'s list
   view, [Stall_policy.classify], [Pheromone.get], [Sched.Heuristic.eta]
   — so it cannot silently share the optimized code paths it is meant to
   check. Every RNG draw and float operation happens in the same order
   as in the production ant; the qcheck suite in [Test_arena] asserts
   byte-identity of the resulting constructions. *)

type op =
  | Selected of { instr : int; explored : bool }
  | Mandatory_stall
  | Optional_stall
  | Died

type event = { op : op; ready_scanned : int; succs_updated : int }

(* [Divergence.path_rank] encoding, as reported by [Aco.Ant.last_rank]. *)
let rank_of_op = function
  | Selected { explored = false; _ } -> 0
  | Selected { explored = true; _ } -> 1
  | Mandatory_stall -> 2
  | Optional_stall -> 3
  | Died -> 4

type t = {
  graph : Ddg.Graph.t;
  params : Aco.Params.t;
  rl_order : Sched.Ready_list.t;  (* pass 1: latencies ignored *)
  rl_cycle : Sched.Ready_list.t;  (* pass 2: latency-aware *)
  rp : Sched.Rp_tracker.t;
  ctx : Sched.Heuristic.ctx;
  mutable rng : Support.Rng.t;
  mutable heuristic : Sched.Heuristic.kind;
  mutable allow_optional : bool;
  mutable mode : Aco.Ant.mode;
  mutable status : Aco.Ant.status;
  mutable last : int;  (* previously selected instruction, -1 at start *)
  mutable rev_slots : Sched.Schedule.slot list;
  mutable n_slots : int;
  mutable n_optional : int;
  mutable work : int;
}

let create graph params =
  let rp = Sched.Rp_tracker.create graph in
  {
    graph;
    params;
    rl_order = Sched.Ready_list.create ~latency_aware:false graph;
    rl_cycle = Sched.Ready_list.create ~latency_aware:true graph;
    rp;
    ctx = Sched.Heuristic.make_ctx graph rp;
    rng = Support.Rng.create 0;
    heuristic = params.Aco.Params.heuristic;
    allow_optional = true;
    mode = Aco.Ant.Rp_pass;
    status = Aco.Ant.Dead;
    last = -1;
    rev_slots = [];
    n_slots = 0;
    n_optional = 0;
    work = 0;
  }

let ready_list t =
  match t.mode with Aco.Ant.Rp_pass -> t.rl_order | Aco.Ant.Ilp_pass _ -> t.rl_cycle

let start t ~rng ~heuristic ~allow_optional_stalls mode =
  t.rng <- rng;
  t.heuristic <- heuristic;
  t.allow_optional <- allow_optional_stalls;
  t.mode <- mode;
  t.status <- Aco.Ant.Active;
  t.last <- -1;
  t.rev_slots <- [];
  t.n_slots <- 0;
  t.n_optional <- 0;
  t.work <- 0;
  Sched.Rp_tracker.reset t.rp;
  Sched.Ready_list.reset (ready_list t)

let status t = t.status

let effective_heuristic t =
  match t.mode with
  | Aco.Ant.Rp_pass -> t.heuristic
  | Aco.Ant.Ilp_pass { target_vgpr; target_sgpr } ->
      let headroom_v = target_vgpr - Sched.Rp_tracker.current t.rp Ir.Reg.Vgpr in
      let headroom_s = target_sgpr - Sched.Rp_tracker.current t.rp Ir.Reg.Sgpr in
      if headroom_v <= 2 || headroom_s <= 8 then Sched.Heuristic.Last_use_count
      else t.heuristic

let pow_fast x e =
  if e = 1.0 then x else if e = 2.0 then x *. x else if e = 0.0 then 1.0 else x ** e

let select t ~pheromone ~explored candidates =
  let heuristic = effective_heuristic t in
  let value j =
    let tau = Aco.Pheromone.get pheromone ~src:t.last ~dst:j in
    let eta = Sched.Heuristic.eta heuristic t.ctx j in
    pow_fast tau t.params.Aco.Params.alpha *. pow_fast eta t.params.Aco.Params.beta
  in
  match candidates with
  | [] -> invalid_arg "Ant_ref.select: empty candidate list"
  | [ only ] -> only
  | _ :: _ ->
      if explored then begin
        let total = List.fold_left (fun acc j -> acc +. value j) 0.0 candidates in
        let u = Support.Rng.float t.rng in
        if total > 0.0 then begin
          let target = u *. total in
          let rec pick acc = function
            | [] | [ _ ] -> List.nth candidates (List.length candidates - 1)
            | j :: rest ->
                let acc = acc +. value j in
                if acc >= target then j else pick acc rest
          in
          pick 0.0 candidates
        end
        else
          (* Degenerate wheel (all values zero): uniform pick reusing the
             single draw, exactly as the production ant does. *)
          let m = List.length candidates in
          List.nth candidates (min (m - 1) (int_of_float (u *. float_of_int m)))
      end
      else
        let first = List.hd candidates in
        let best, _ =
          List.fold_left
            (fun (bj, bv) j ->
              let v = value j in
              if v > bv then (j, v) else (bj, bv))
            (first, value first)
            (List.tl candidates)
        in
        best

let emit_instr t rl i =
  Sched.Ready_list.schedule rl i;
  Sched.Rp_tracker.schedule t.rp i;
  t.rev_slots <- Sched.Schedule.Instr i :: t.rev_slots;
  t.n_slots <- t.n_slots + 1;
  t.last <- i;
  if Sched.Ready_list.finished rl then t.status <- Aco.Ant.Finished

let emit_stall t rl =
  Sched.Ready_list.stall rl;
  t.rev_slots <- Sched.Schedule.Stall :: t.rev_slots;
  t.n_slots <- t.n_slots + 1

let finish_event t ev =
  t.work <- t.work + ev.ready_scanned + ev.succs_updated + 3;
  ev

let ready_count t =
  if t.status <> Aco.Ant.Active then 0 else Sched.Ready_list.ready_count (ready_list t)

let rec take k = function
  | [] -> []
  | x :: rest -> if k <= 0 then [] else x :: take (k - 1) rest

let step ?force_explore ?ready_limit t ~pheromone =
  if t.status <> Aco.Ant.Active then invalid_arg "Ant_ref.step: ant is not active";
  let rl = ready_list t in
  let ready = Sched.Ready_list.ready_list rl in
  let ready =
    match (ready_limit, t.mode) with
    | Some k, Aco.Ant.Rp_pass when k >= 1 -> take k ready
    | (Some _ | None), _ -> ready
  in
  let n_ready = List.length ready in
  let explored =
    match force_explore with
    | Some b -> b
    | None -> not (Support.Rng.bool t.rng t.params.Aco.Params.q0)
  in
  let selected_event i =
    finish_event t
      {
        op = Selected { instr = i; explored };
        ready_scanned = n_ready;
        succs_updated = Ddg.Graph.num_succs t.graph i;
      }
  in
  match t.mode with
  | Aco.Ant.Rp_pass ->
      let i = select t ~pheromone ~explored ready in
      emit_instr t rl i;
      selected_event i
  | Aco.Ant.Ilp_pass { target_vgpr; target_sgpr } ->
      if n_ready = 0 then begin
        emit_stall t rl;
        finish_event t { op = Mandatory_stall; ready_scanned = 0; succs_updated = 0 }
      end
      else begin
        let has_semi_ready = Sched.Ready_list.min_semi_ready_cycle rl <> None in
        match
          Aco.Stall_policy.classify ~rng:t.rng ~allow_optional:t.allow_optional
            ~base_probability:t.params.Aco.Params.stall_base_probability ~rp:t.rp
            ~target_vgpr ~target_sgpr ~ready ~has_semi_ready
            ~optional_stalls_so_far:t.n_optional
        with
        | Aco.Stall_policy.Schedule_from fitting ->
            let i = select t ~pheromone ~explored fitting in
            emit_instr t rl i;
            selected_event i
        | Aco.Stall_policy.Optional_stall ->
            emit_stall t rl;
            t.n_optional <- t.n_optional + 1;
            finish_event t { op = Optional_stall; ready_scanned = n_ready; succs_updated = 0 }
        | Aco.Stall_policy.Forced_breach ->
            t.status <- Aco.Ant.Dead;
            finish_event t { op = Died; ready_scanned = n_ready; succs_updated = 0 }
      end

let kill t = t.status <- Aco.Ant.Dead

let run_to_completion ?force_explore t ~pheromone =
  while t.status = Aco.Ant.Active do
    ignore (step ?force_explore t ~pheromone)
  done

let slots t = List.rev t.rev_slots

let order t =
  let acc = ref [] in
  List.iter
    (fun s ->
      match s with Sched.Schedule.Instr i -> acc := i :: !acc | Sched.Schedule.Stall -> ())
    t.rev_slots;
  Array.of_list !acc

let schedule t =
  if t.status <> Aco.Ant.Finished then None
  else
    let latency_aware =
      match t.mode with Aco.Ant.Rp_pass -> false | Aco.Ant.Ilp_pass _ -> true
    in
    match Sched.Schedule.of_slots t.graph ~latency_aware (slots t) with
    | Ok s -> Some s
    | Error _ -> None

let rp_peaks t =
  (Sched.Rp_tracker.peak t.rp Ir.Reg.Vgpr, Sched.Rp_tracker.peak t.rp Ir.Reg.Sgpr)

let length t = t.n_slots
let optional_stalls t = t.n_optional
let work t = t.work

(* ------------------------------------------------------------------ *)
(* Frozen colony pass: the pre-policy [Seq_aco.run_pass] loop kept
   verbatim (inline [Pheromone.reset]/[deposit_path]/[decay] calls in
   the historical order) as the differential oracle for
   [Aco.Colony.run_pass] driven by the [As] pheromone policy. It runs
   the production [Aco.Ant] — the construction substrate is shared on
   purpose; what this pins down is the driver loop's RNG draw order,
   work accounting, pheromone arithmetic and minor-words window. *)

let colony_run_pass (type a) ~params ~rng ~ants ~pheromone ~mode
    ~(cost_of_ant : Aco.Ant.t -> int) ~(artifact_of_ant : Aco.Ant.t -> a)
    ~allow_optional_stalls ~budget_work ~metrics ~pass_label ~initial_cost
    ~(initial_order : int array) ~(initial_artifact : a) ~lb_cost ~termination :
    a * int * Engine.Types.pass_stats =
  let open Aco.Params in
  Aco.Pheromone.reset pheromone ~initial:params.initial_pheromone;
  Aco.Pheromone.deposit_path_scaled pheromone initial_order ~deposit:params.deposit
    ~cost:initial_cost;
  let metering = Obs.Metrics.enabled metrics in
  let m_best = if metering then pass_label ^ ".best_cost" else "" in
  let m_entropy = if metering then pass_label ^ ".pheromone_entropy" else "" in
  let bc_buf = Array.make (1 + params.max_iterations) initial_cost in
  let bc_len = ref 1 in
  let start_ant ant ~rng mode =
    Aco.Ant.start ant ~rng ~heuristic:params.heuristic ~allow_optional_stalls mode
  in
  let minor_before = Support.Perfcount.minor_words () in
  let best_cost = ref initial_cost in
  let best = ref initial_artifact in
  let improved = ref false in
  let iterations = ref 0 in
  let no_improve = ref 0 in
  let work = ref 0 in
  let ants_total = ref 0 in
  let n = Aco.Pheromone.size pheromone in
  while
    !best_cost > lb_cost && !no_improve < termination && !iterations < params.max_iterations
    && !work < budget_work
  do
    incr iterations;
    let iter_best_cost = ref max_int in
    let iter_best = ref None in
    Array.iter
      (fun ant ->
        start_ant ant ~rng:(Support.Rng.split rng) mode;
        Aco.Ant.run_to_completion ant ~pheromone;
        ants_total := !ants_total + 1;
        work := !work + Aco.Ant.work ant;
        if Aco.Ant.status ant = Aco.Ant.Finished then begin
          let c = cost_of_ant ant in
          if c < !iter_best_cost then begin
            iter_best_cost := c;
            iter_best := Some (Aco.Ant.order ant, artifact_of_ant ant)
          end
        end)
      ants;
    work := !work + (((n + 1) * n) / 8) + n;
    Aco.Pheromone.decay pheromone params.decay;
    (match !iter_best with
    | Some (order, art) ->
        Aco.Pheromone.deposit_path_scaled pheromone order ~deposit:params.deposit
          ~cost:!iter_best_cost;
        if !iter_best_cost < !best_cost then begin
          best_cost := !iter_best_cost;
          best := art;
          improved := true;
          no_improve := 0
        end
        else incr no_improve
    | None -> incr no_improve);
    bc_buf.(!bc_len) <- !best_cost;
    incr bc_len;
    if metering then begin
      Obs.Metrics.push metrics m_best (float_of_int !best_cost);
      Obs.Metrics.push metrics m_entropy (Aco.Pheromone.row_entropy pheromone)
    end
  done;
  let minor_delta = Support.Perfcount.minor_words () -. minor_before in
  let best_costs = Array.sub bc_buf 0 !bc_len in
  ( !best,
    !best_cost,
    {
      Engine.Types.no_pass with
      Engine.Types.invoked = true;
      iterations = !iterations;
      ants_simulated = !ants_total;
      work = !work;
      improved = !improved;
      hit_lower_bound = !best_cost <= lb_cost;
      aborted_budget = budget_work < max_int && !work >= budget_work;
      best_costs;
      minor_words = minor_delta;
    } )
