(* The tracker is split into a shared immutable [layout] — the interned
   register universe and per-instruction Def/Use id arrays, identical for
   every ant scheduling the same region — and a small per-ant mutable
   state carved out of a caller-supplied arena (or a private backing
   array). A colony of 64 lanes therefore interns registers once and
   packs all 64 trackers' state into one allocation (Section V-A's
   batched SoA layout). *)

type layout = {
  graph : Ddg.Graph.t;
  cls : Ir.Reg.cls array;  (* dense id -> class *)
  (* per-instruction dense register ids, precomputed so the hot path never
     hashes *)
  use_ids : int array array;
  def_ids : int array array;
  (* per-instruction def counts by class: scheduling [i] can raise a
     class's pressure by at most this many opens, which gives the hot
     fits check a sound fast path that skips the per-register scan *)
  defs_v : int array;
  defs_s : int array;
  total_uses : int array;
  live_out : bool array;
  live_in : bool array;
  nregs : int;
}

type t = {
  layout : layout;
  buf : int array;
  rem_base : int;  (* remaining use counts, nregs entries *)
  live_base : int;  (* 0/1 liveness flags, nregs entries *)
  cur_base : int;  (* current pressure, 2 entries (class rank) *)
  peak_base : int;  (* peak pressure, 2 entries *)
  eff_base : int;  (* effects scratch, 4 entries (see [compute_effects]) *)
}

let rank = function Ir.Reg.Vgpr -> 0 | Ir.Reg.Sgpr -> 1

let layout_of_graph (graph : Ddg.Graph.t) =
  let region = graph.region in
  let instrs = (region : Ir.Region.t).instrs in
  let index = Hashtbl.create 64 in
  let next = ref 0 in
  let intern r =
    match Hashtbl.find_opt index r with
    | Some i -> i
    | None ->
        let i = !next in
        Hashtbl.add index r i;
        incr next;
        i
  in
  let use_ids =
    Array.map (fun (ins : Ir.Instr.t) -> Array.of_list (List.map intern ins.uses)) instrs
  in
  let def_ids =
    Array.map (fun (ins : Ir.Instr.t) -> Array.of_list (List.map intern ins.defs)) instrs
  in
  List.iter (fun r -> ignore (intern r)) (region : Ir.Region.t).live_out;
  List.iter (fun r -> ignore (intern r)) (Ir.Region.live_in region);
  let nregs = max !next 1 in
  let cls = Array.make nregs Ir.Reg.Vgpr in
  Hashtbl.iter (fun (r : Ir.Reg.t) i -> cls.(i) <- r.cls) index;
  let total_uses = Array.make nregs 0 in
  Array.iter (Array.iter (fun i -> total_uses.(i) <- total_uses.(i) + 1)) use_ids;
  let live_out = Array.make nregs false in
  List.iter (fun r -> live_out.(Hashtbl.find index r) <- true) (region : Ir.Region.t).live_out;
  let live_in = Array.make nregs false in
  List.iter (fun r -> live_in.(Hashtbl.find index r) <- true) (Ir.Region.live_in region);
  let n = Array.length def_ids in
  let defs_v = Array.make n 0 and defs_s = Array.make n 0 in
  for i = 0 to n - 1 do
    Array.iter
      (fun di ->
        match cls.(di) with
        | Ir.Reg.Vgpr -> defs_v.(i) <- defs_v.(i) + 1
        | Ir.Reg.Sgpr -> defs_s.(i) <- defs_s.(i) + 1)
      def_ids.(i)
  done;
  { graph; cls; use_ids; def_ids; defs_v; defs_s; total_uses; live_out; live_in; nregs }

let int_demand layout = (2 * layout.nregs) + 8

let reset t =
  let l = t.layout in
  let buf = t.buf in
  Array.blit l.total_uses 0 buf t.rem_base l.nregs;
  buf.(t.cur_base) <- 0;
  buf.(t.cur_base + 1) <- 0;
  for i = 0 to l.nregs - 1 do
    if l.live_in.(i) then begin
      buf.(t.live_base + i) <- 1;
      let c = rank l.cls.(i) in
      buf.(t.cur_base + c) <- buf.(t.cur_base + c) + 1
    end
    else buf.(t.live_base + i) <- 0
  done;
  buf.(t.peak_base) <- buf.(t.cur_base);
  buf.(t.peak_base + 1) <- buf.(t.cur_base + 1)

let create_in arena layout =
  let base = Support.Arena.alloc_ints arena (int_demand layout) in
  let t =
    {
      layout;
      buf = Support.Arena.ints arena;
      rem_base = base;
      live_base = base + layout.nregs;
      cur_base = base + (2 * layout.nregs);
      peak_base = base + (2 * layout.nregs) + 2;
      eff_base = base + (2 * layout.nregs) + 4;
    }
  in
  reset t;
  t

let create graph =
  let layout = layout_of_graph graph in
  let arena = Support.Arena.create ~ints:(int_demand layout) ~floats:0 in
  create_in arena layout

let copy t =
  let buf = Array.copy t.buf in
  (* A private copy keeps the source's offsets but its own backing, so
     the two trackers evolve independently even when the source lives in
     a shared arena. *)
  { t with buf }

let schedule t i =
  let l = t.layout in
  let buf = t.buf in
  let uses = l.use_ids.(i) and defs = l.def_ids.(i) in
  Array.iter
    (fun ui ->
      buf.(t.rem_base + ui) <- buf.(t.rem_base + ui) - 1;
      if buf.(t.rem_base + ui) = 0 && (not l.live_out.(ui)) && buf.(t.live_base + ui) = 1
      then begin
        buf.(t.live_base + ui) <- 0;
        let c = rank l.cls.(ui) in
        buf.(t.cur_base + c) <- buf.(t.cur_base + c) - 1
      end)
    uses;
  Array.iter
    (fun di ->
      if buf.(t.live_base + di) = 0 then begin
        buf.(t.live_base + di) <- 1;
        let c = rank l.cls.(di) in
        buf.(t.cur_base + c) <- buf.(t.cur_base + c) + 1
      end)
    defs;
  if buf.(t.cur_base) > buf.(t.peak_base) then buf.(t.peak_base) <- buf.(t.cur_base);
  if buf.(t.cur_base + 1) > buf.(t.peak_base + 1) then
    buf.(t.peak_base + 1) <- buf.(t.cur_base + 1);
  (* A def with no remaining uses and not live-out dies immediately after
     being counted at this instruction's point. *)
  Array.iter
    (fun di ->
      if buf.(t.rem_base + di) = 0 && (not l.live_out.(di)) && buf.(t.live_base + di) = 1
      then begin
        buf.(t.live_base + di) <- 0;
        let c = rank l.cls.(di) in
        buf.(t.cur_base + c) <- buf.(t.cur_base + c) - 1
      end)
    defs

let current t cls = t.buf.(t.cur_base + rank cls)
let peak t cls = t.buf.(t.peak_base + rank cls)

let peak_excess t ~target_vgpr ~target_sgpr =
  (max 0 (t.buf.(t.peak_base) - target_vgpr), max 0 (t.buf.(t.peak_base + 1) - target_sgpr))

(* One-pass, allocation-free analysis of scheduling [i]: per class, the
   live ranges it would close and open. Duplicate uses of one register in
   the same instruction are counted by multiplicity with a quadratic scan
   (Def/Use sets are tiny). Results land in the tracker's own arena slice
   at [eff_base] (closed_v; opened_v; closed_s; opened_s) — per-tracker,
   not module-global, so colonies on different domains never share it. *)

let compute_effects t i =
  let l = t.layout in
  let buf = t.buf in
  let e = t.eff_base in
  Array.fill buf e 4 0;
  let uses = l.use_ids.(i) and defs = l.def_ids.(i) in
  let n_uses = Array.length uses in
  for k = 0 to n_uses - 1 do
    let ui = uses.(k) in
    (* multiplicity of ui among uses.(0..k) *)
    let mult = ref 0 in
    for j = 0 to k do
      if uses.(j) = ui then incr mult
    done;
    if buf.(t.rem_base + ui) = !mult && (not l.live_out.(ui)) && buf.(t.live_base + ui) = 1
    then begin
      (* this occurrence is the last outstanding use *)
      let last_occurrence = ref true in
      for j = k + 1 to n_uses - 1 do
        if uses.(j) = ui then last_occurrence := false
      done;
      if !last_occurrence then
        let c = rank l.cls.(ui) in
        buf.(e + (2 * c)) <- buf.(e + (2 * c)) + 1
    end
  done;
  Array.iter
    (fun di ->
      if buf.(t.live_base + di) = 0 then begin
        (* already-opened within this instruction? defs are unique *)
        let c = rank l.cls.(di) in
        buf.(e + (2 * c) + 1) <- buf.(e + (2 * c) + 1) + 1
      end)
    defs

let delta_if_scheduled t i cls =
  compute_effects t i;
  let c = rank cls in
  t.buf.(t.eff_base + (2 * c) + 1) - t.buf.(t.eff_base + (2 * c))

let peak_if_scheduled t i cls =
  compute_effects t i;
  let c = rank cls in
  max t.buf.(t.peak_base + c)
    (t.buf.(t.cur_base + c)
    - t.buf.(t.eff_base + (2 * c))
    + t.buf.(t.eff_base + (2 * c) + 1))

let fits_within t i ~target_vgpr ~target_sgpr =
  let l = t.layout in
  let buf = t.buf in
  (* Fast path: the post-schedule pressure is at most cur + defs of the
     class (every open is a def; closes only lower it), so when even
     that bound fits there is no need to scan the registers. With the
     generous targets of early ILP iterations this covers almost every
     candidate. *)
  if
    max buf.(t.peak_base) (buf.(t.cur_base) + l.defs_v.(i)) <= target_vgpr
    && max buf.(t.peak_base + 1) (buf.(t.cur_base + 1) + l.defs_s.(i)) <= target_sgpr
  then true
  else begin
    compute_effects t i;
    let e = t.eff_base in
    let v = max buf.(t.peak_base) (buf.(t.cur_base) - buf.(e) + buf.(e + 1)) in
    let s = max buf.(t.peak_base + 1) (buf.(t.cur_base + 1) - buf.(e + 2) + buf.(e + 3)) in
    v <= target_vgpr && s <= target_sgpr
  end

(* Stable in-place filter: compact the candidates of [cand.(0..n_cand-1)]
   that fit the targets into the prefix, preserving order, and return
   their count. Equivalent to testing [fits_within] on each candidate,
   with the pressure loads hoisted out of the loop. *)
let filter_fits_prefix t ~cand ~n_cand ~target_vgpr ~target_sgpr =
  let l = t.layout in
  let buf = t.buf in
  let e = t.eff_base in
  let pv = buf.(t.peak_base) and ps = buf.(t.peak_base + 1) in
  let cv = buf.(t.cur_base) and cs = buf.(t.cur_base + 1) in
  if pv > target_vgpr || ps > target_sgpr then 0
    (* the peak already exceeds a target: nothing can fit *)
  else begin
    let m = ref 0 in
    for k = 0 to n_cand - 1 do
      let i = Array.unsafe_get cand k in
      let fits =
        (cv + Array.unsafe_get l.defs_v i <= target_vgpr
        && cs + Array.unsafe_get l.defs_s i <= target_sgpr)
        ||
        (compute_effects t i;
         cv - buf.(e) + buf.(e + 1) <= target_vgpr
         && cs - buf.(e + 2) + buf.(e + 3) <= target_sgpr)
      in
      if fits then begin
        Array.unsafe_set cand !m i;
        incr m
      end
    done;
    !m
  end

let closes_count t i =
  compute_effects t i;
  let e = t.eff_base in
  t.buf.(e) + t.buf.(e + 2)

let opens_count t i =
  compute_effects t i;
  let e = t.eff_base in
  t.buf.(e + 1) + t.buf.(e + 3)

let closes_minus_opens t i =
  (* One effects pass instead of two; same integer as
     [closes_count t i - opens_count t i]. *)
  compute_effects t i;
  let e = t.eff_base in
  t.buf.(e) + t.buf.(e + 2) - t.buf.(e + 1) - t.buf.(e + 3)

(* Independent reference implementation over live-range intervals; assumes
   single-definition registers (all generated workloads are SSA-like).
   A register is live at point p (the point just after the instruction at
   position p; p = -1 is region entry) iff it was born at or before p and
   either is live-out, or still has a use after p, or is a dead def born
   exactly at p. *)
let naive_peaks (graph : Ddg.Graph.t) order =
  let region = graph.region in
  let pos = Array.make graph.n 0 in
  Array.iteri (fun p i -> pos.(i) <- p) order;
  let births : (Ir.Reg.t, int) Hashtbl.t = Hashtbl.create 64 in
  let deaths : (Ir.Reg.t, int) Hashtbl.t = Hashtbl.create 64 in
  let has_uses : (Ir.Reg.t, unit) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (ins : Ir.Instr.t) ->
      let p = pos.(ins.id) in
      List.iter
        (fun d ->
          match Hashtbl.find_opt births d with
          | Some b -> if p < b then Hashtbl.replace births d p
          | None -> Hashtbl.add births d p)
        ins.defs;
      List.iter
        (fun u ->
          Hashtbl.replace has_uses u ();
          match Hashtbl.find_opt deaths u with
          | Some dth -> if p > dth then Hashtbl.replace deaths u p
          | None -> Hashtbl.add deaths u p)
        ins.uses)
    (region : Ir.Region.t).instrs;
  let live_out r = Ir.Region.is_live_out region r in
  let all_regs =
    Hashtbl.fold (fun r _ acc -> r :: acc) has_uses []
    |> List.append (Hashtbl.fold (fun r _ acc -> r :: acc) births [])
    |> List.sort_uniq Ir.Reg.compare
  in
  let live_at r p =
    let birth = Option.value (Hashtbl.find_opt births r) ~default:(-1) in
    if birth > p then false
    else if live_out r then true
    else
      match Hashtbl.find_opt deaths r with
      | Some d -> d > p
      | None -> p = birth (* dead def: live only at its own point *)
  in
  let peaks = [| 0; 0 |] in
  for p = -1 to Array.length order - 1 do
    let counts = [| 0; 0 |] in
    List.iter
      (fun (r : Ir.Reg.t) -> if live_at r p then counts.(rank r.cls) <- counts.(rank r.cls) + 1)
      all_regs;
    peaks.(0) <- max peaks.(0) counts.(0);
    peaks.(1) <- max peaks.(1) counts.(1)
  done;
  fun cls -> peaks.(rank cls)
