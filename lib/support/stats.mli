(** Descriptive statistics used throughout the paper's evaluation:
    geometric means for speedup ratios (Tables 3.a/3.b, Figure 4),
    medians of repeated runs, coefficients of variation for the
    scheduling-sensitivity filter (Section VI-A), and histogram rendering
    for the speedup-distribution figures (Figures 2 and 3). *)

val mean : float list -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty list. *)

val geomean : float list -> float
(** Geometric mean of strictly positive values. *)

val median : float list -> float
(** Median (average of middle two for even length). *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,1\]], nearest-rank interpolation. *)

val stddev : float list -> float
(** Population standard deviation. *)

val coeff_of_variation : float list -> float
(** Standard deviation divided by mean; the scheduling-sensitivity
    criterion of Section VI-A uses a 3% threshold on this. *)

val min_max : float list -> float * float

type histogram = { bucket_edges : float array; counts : int array; total : int }
(** [counts.(i)] holds values in [\[edges.(i), edges.(i+1))]; the last
    bucket is closed on the right. *)

val histogram : edges:float array -> float list -> histogram
(** Bucket values by the given (sorted, length >= 2) edges. Values outside
    the edge range are clamped into the first/last bucket. *)

val render_histogram :
  ?width:int -> title:string -> label:(int -> string) -> histogram -> string
(** ASCII bar chart, one row per bucket; [label i] names bucket [i]. *)
