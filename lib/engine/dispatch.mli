(** Per-region backend choice for the product compiler.

    The pipeline asks the policy which backends should compile a region;
    with more than one candidate (a {!Race}) every candidate runs and
    the best schedule ships. *)

type policy =
  | Fixed of string  (** one backend for every region *)
  | Size_threshold of { small : string; large : string; threshold : int }
      (** regions below [threshold] instructions use [small], the rest
          [large] — the ["auto"] CLI policy (small regions do not
          amortize the GPU launch overhead) *)
  | Race of string list
      (** portfolio: run every backend, ship the best schedule *)

val default : policy
(** [Fixed "par"] — the paper's product compiler. *)

val candidates : policy -> n:int -> string list
(** Backends to run for a region of [n] instructions, in run order. *)

val backend_names : policy -> string list
(** Every backend the policy can name (for upfront validation). *)

exception Duplicate_backend of string
(** A race list named the same backend twice — racing a deterministic
    backend against itself can only reproduce its own schedule. *)

val of_string : ?auto_threshold:int -> string -> policy
(** Parse a CLI spec: a backend name is {!Fixed}, ["auto"] is
    {!Size_threshold} with seq below [auto_threshold] (default 50) and
    par above, and a comma-separated list is {!Race}. Does not check
    the names against the registry.
    @raise Invalid_argument on an empty spec.
    @raise Duplicate_backend when a race list repeats a name. *)

val to_string : policy -> string
