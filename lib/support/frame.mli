(** Length-prefixed framing for the compile service's wire protocol.

    A frame is a 4-byte big-endian payload length followed by the
    payload bytes. Framing is deliberately dumb — the interesting
    structure lives in the payload (see [Pipeline.Serve]) — but it is
    the layer that must survive hostile input: a stream that lies about
    its length, runs out mid-frame, or advertises a frame larger than
    the server is willing to buffer is reported as a typed error, never
    an exception, and never an unbounded allocation.

    Once a framing error is observed the stream position is unreliable
    (the reader cannot know where the next frame starts), so transports
    treat any [Error] as fatal for the connection; payload-level parse
    errors, by contrast, are recoverable because the frame boundary
    held. *)

type error =
  | Truncated of { expected : int; got : int }
      (** the stream ended inside a header or payload *)
  | Oversized of { length : int; limit : int }
      (** the header advertises a payload larger than [limit] — rejected
          before any allocation *)

val error_to_string : error -> string

val default_limit : int
(** Default maximum payload size accepted by the readers (1 MiB). *)

val header_size : int
(** Bytes of the length prefix (4). *)

val encode : string -> string
(** The frame as bytes: header + payload. *)

val write : out_channel -> string -> unit
(** [encode] straight onto a channel, without the intermediate copy. *)

val read : ?limit:int -> in_channel -> (string option, error) result
(** Read one frame. [Ok None] is a clean end of stream (EOF exactly at a
    frame boundary); EOF anywhere else is [Error (Truncated _)]. *)

(** {2 Pure decoding}

    For transports that hand over raw byte buffers (and for tests that
    want to cut streams at arbitrary points without a channel). *)

val decode : ?limit:int -> string -> pos:int -> (string * int, [ `Need_more | `Error of error ]) result
(** [decode buf ~pos] is [Ok (payload, next_pos)] when a complete frame
    starts at [pos]; [`Need_more] when the buffer holds only a prefix of
    one (distinguishable from [`Error] because more input could still
    complete the frame). *)

val decode_all : ?limit:int -> string -> string list * error option
(** Decode a whole buffer into payloads; a trailing partial frame is
    reported as [Some (Truncated _)] — buffers fed here are complete
    streams, so a dangling prefix is a truncation. *)
