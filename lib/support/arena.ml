type t = {
  ints : int array;
  floats : float array;
  mutable int_used : int;
  mutable float_used : int;
}

let create ~ints ~floats =
  if ints < 0 || floats < 0 then invalid_arg "Arena.create: negative capacity";
  {
    ints = Array.make (max ints 1) 0;
    floats = Array.make (max floats 1) 0.0;
    int_used = 0;
    float_used = 0;
  }

let alloc_ints t n =
  if n < 0 then invalid_arg "Arena.alloc_ints: negative size";
  let base = t.int_used in
  if base + n > Array.length t.ints then invalid_arg "Arena.alloc_ints: capacity exceeded";
  t.int_used <- base + n;
  base

let alloc_floats t n =
  if n < 0 then invalid_arg "Arena.alloc_floats: negative size";
  let base = t.float_used in
  if base + n > Array.length t.floats then invalid_arg "Arena.alloc_floats: capacity exceeded";
  t.float_used <- base + n;
  base

let ints t = t.ints
let floats t = t.floats
let int_capacity t = Array.length t.ints
let float_capacity t = Array.length t.floats
let int_used t = t.int_used
let float_used t = t.float_used

let words t =
  (* One OCaml word per int; float arrays store unboxed doubles (one word
     each on 64-bit). Headers are ignored — this is a capacity stat, not
     a heap census. *)
  Array.length t.ints + Array.length t.floats

(* --- per-domain arena pool ---------------------------------------------- *)

(* Backends create their colony arena in [prepare] and drop it in
   [teardown]; under the executor that is one multi-kilobyte allocation
   pair per region job. The pool parks retired arenas in domain-local
   storage so the next job on the same domain reuses the backing arrays.

   Reuse is invisible to results: [reset] rewinds the bump pointers and
   zero-fills the used prefixes, so a pooled arena is indistinguishable
   from a fresh zero-filled one (consumers may rely on zero
   initialization). Allocation happens outside every measured
   minor-words window (the perf counters snapshot inside the pass
   loops), so pooling perturbs no digested statistic. *)

let reset t =
  Array.fill t.ints 0 t.int_used 0;
  Array.fill t.floats 0 t.float_used 0.0;
  t.int_used <- 0;
  t.float_used <- 0

let pool_limit = 8
let pool_key : t list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let pool_takes = Atomic.make 0
let pool_reuses = Atomic.make 0

let takes () = Atomic.get pool_takes
let reuses () = Atomic.get pool_reuses

let take ~ints ~floats =
  if ints < 0 || floats < 0 then invalid_arg "Arena.take: negative capacity";
  Atomic.incr pool_takes;
  let pool = Domain.DLS.get pool_key in
  let fits a = Array.length a.ints >= max ints 1 && Array.length a.floats >= max floats 1 in
  let rec search acc = function
    | [] -> None
    | a :: rest when fits a ->
        pool := List.rev_append acc rest;
        Some a
    | a :: rest -> search (a :: acc) rest
  in
  match search [] !pool with
  | Some a ->
      Atomic.incr pool_reuses;
      a
  | None -> create ~ints ~floats

let give a =
  reset a;
  let pool = Domain.DLS.get pool_key in
  if List.length !pool < pool_limit then pool := a :: !pool
  else begin
    (* full: drop the smallest resident so capacity ratchets upward *)
    let smallest =
      List.fold_left (fun m x -> if words x < words m then x else m) a !pool
    in
    if smallest != a then pool := a :: List.filter (fun x -> x != smallest) !pool
  end
