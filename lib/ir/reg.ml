type cls = Vgpr | Sgpr
type t = { cls : cls; id : int }

let vgpr id = { cls = Vgpr; id }
let sgpr id = { cls = Sgpr; id }

let cls_equal a b = match (a, b) with Vgpr, Vgpr | Sgpr, Sgpr -> true | (Vgpr | Sgpr), _ -> false

let equal a b = cls_equal a.cls b.cls && a.id = b.id

let cls_rank = function Vgpr -> 0 | Sgpr -> 1

let compare a b =
  let c = Int.compare (cls_rank a.cls) (cls_rank b.cls) in
  if c <> 0 then c else Int.compare a.id b.id

let hash t = (cls_rank t.cls * 1000003) + t.id

let all_classes = [ Vgpr; Sgpr ]

let cls_to_string = function Vgpr -> "VGPR" | Sgpr -> "SGPR"

let to_string t =
  match t.cls with Vgpr -> "v" ^ string_of_int t.id | Sgpr -> "s" ^ string_of_int t.id

let pp fmt t = Format.pp_print_string fmt (to_string t)
