(** Mutable binary max-heap priority queue.

    The list schedulers keep their ready lists in one of these when the
    guiding heuristic induces a total priority order; the ACO ants instead
    scan flat ready arrays because their selection is randomized. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty queue; [cmp a b > 0] means [a] has higher
    priority (is popped first). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the highest-priority element. *)

val peek : 'a t -> 'a option

val to_list : 'a t -> 'a list
(** Snapshot of the contents in unspecified order. *)

val clear : 'a t -> unit
