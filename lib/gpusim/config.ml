type opts = {
  coalesced_layout : bool;
  batched_alloc : bool;
  tight_ready_ub : bool;
  wavefront_level_explore : bool;
  optional_stall_fraction : float;
  early_wavefront_termination : bool;
  per_wavefront_heuristic : bool;
  ready_list_limiting : [ `Off | `Min | `Mid ];
}

let opts_paper =
  {
    coalesced_layout = true;
    batched_alloc = true;
    tight_ready_ub = true;
    wavefront_level_explore = true;
    optional_stall_fraction = 0.25;
    early_wavefront_termination = true;
    per_wavefront_heuristic = true;
    ready_list_limiting = `Off;
  }

let opts_no_memory =
  { opts_paper with coalesced_layout = false; batched_alloc = false; tight_ready_ub = false }

let opts_no_divergence =
  {
    opts_paper with
    wavefront_level_explore = false;
    optional_stall_fraction = 1.0;
    early_wavefront_termination = false;
    per_wavefront_heuristic = false;
  }

type t = {
  target : Machine.Target.t;
  num_wavefronts : int;
  cpu_ns_per_op : float;
  gpu_ns_per_op : float;
  mem_transaction_ns : float;
  launch_overhead_ns : float;
  copy_ns_per_word : float;
  sync_overhead_ns : float;
  alloc_call_ns : float;
  opts : opts;
}

let default =
  {
    target = Machine.Target.vega20;
    num_wavefronts = 180;
    cpu_ns_per_op = 5.0;
    gpu_ns_per_op = 55.0;
    mem_transaction_ns = 18.0;
    launch_overhead_ns = 400_000.0;
    copy_ns_per_word = 1.0;
    sync_overhead_ns = 2_000.0;
    alloc_call_ns = 10_000.0;
    opts = opts_paper;
  }

let bench = { default with num_wavefronts = 6 }

let with_opts t opts = { t with opts }

let threads t = t.num_wavefronts * t.target.Machine.Target.wavefront_size
