(** The pheromone table.

    An [(n+1) x n] matrix: entry [(i, j)] is the pheromone on the link
    "schedule [j] right after [i]"; the extra row is the virtual start
    node for the first selection. At the end of each iteration the whole
    table decays and the links of the iteration winner receive a deposit
    (Section IV-A). *)

type t

val create : n:int -> initial:float -> t

val size : t -> int
(** Number of instructions [n]. *)

val get : t -> src:int -> dst:int -> float
(** [src = -1] addresses the virtual start row. *)

val decay : t -> float -> unit
(** Multiply every entry by the retention factor. *)

val deposit : t -> src:int -> dst:int -> float -> unit
(** Add to one entry ([src = -1] allowed). *)

val deposit_path : t -> int array -> float -> unit
(** Deposit along consecutive links of an instruction order, including
    the virtual start link. *)

val reset : t -> initial:float -> unit

val total : t -> float
(** Sum of all entries (diagnostics / tests). *)
