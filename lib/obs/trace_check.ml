(* Validation for Chrome trace-event JSON, used by `gpuaco trace --lint`
   and CI. We have no JSON dependency, so this carries a minimal
   recursive-descent parser for the subset JSON grammar (objects, arrays,
   strings with escapes, numbers, true/false/null) — enough to re-read
   what Trace.to_chrome_json and any well-formed trace viewer emits. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | Some c' -> parse_error "expected '%c' at offset %d, got '%c'" c st.pos c'
  | None -> parse_error "expected '%c' at offset %d, got end of input" c st.pos

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.src then parse_error "unterminated string";
    let c = st.src.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' ->
        (if st.pos >= String.length st.src then parse_error "unterminated escape";
         let e = st.src.[st.pos] in
         st.pos <- st.pos + 1;
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
             if st.pos + 4 > String.length st.src then parse_error "truncated \\u escape";
             let hex = String.sub st.src st.pos 4 in
             st.pos <- st.pos + 4;
             let code =
               try int_of_string ("0x" ^ hex)
               with _ -> parse_error "bad \\u escape %s" hex
             in
             (* ASCII passthrough; non-ASCII replaced, fidelity unneeded for lint *)
             if code < 0x80 then Buffer.add_char buf (Char.chr code)
             else Buffer.add_char buf '?'
         | e -> parse_error "bad escape '\\%c'" e);
        go ()
    | c when Char.code c < 0x20 -> parse_error "raw control character in string"
    | c ->
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while st.pos < String.length st.src && is_num_char st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some v -> Num v
  | None -> parse_error "bad number %S at offset %d" s start

let parse_lit st lit v =
  let n = String.length lit in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = lit then begin
    st.pos <- st.pos + n;
    v
  end
  else parse_error "bad literal at offset %d" st.pos

let rec parse_value st =
  skip_ws st;
  match peek st with
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some '"' -> Str (parse_string st)
  | Some 't' -> parse_lit st "true" (Bool true)
  | Some 'f' -> parse_lit st "false" (Bool false)
  | Some 'n' -> parse_lit st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> parse_error "unexpected '%c' at offset %d" c st.pos
  | None -> parse_error "unexpected end of input"

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    st.pos <- st.pos + 1;
    Obj []
  end
  else begin
    let fields = ref [] in
    let rec go () =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      fields := (key, v) :: !fields;
      skip_ws st;
      match peek st with
      | Some ',' ->
          st.pos <- st.pos + 1;
          go ()
      | Some '}' -> st.pos <- st.pos + 1
      | _ -> parse_error "expected ',' or '}' at offset %d" st.pos
    in
    go ();
    Obj (List.rev !fields)
  end

and parse_list st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    st.pos <- st.pos + 1;
    List []
  end
  else begin
    let items = ref [] in
    let rec go () =
      let v = parse_value st in
      items := v :: !items;
      skip_ws st;
      match peek st with
      | Some ',' ->
          st.pos <- st.pos + 1;
          go ()
      | Some ']' -> st.pos <- st.pos + 1
      | _ -> parse_error "expected ',' or ']' at offset %d" st.pos
    in
    go ();
    List (List.rev !items)
  end

let parse_json s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then parse_error "trailing garbage at offset %d" st.pos;
  v

(* --- Trace lint --------------------------------------------------------- *)

type report = {
  events : int;
  spans : int;
  instants : int;
  tracks : int;
  wall_tracks : int; (* tracks under a nonzero pid (the wall-clock process) *)
  errors : string list;
}

let ok r = r.errors = []

let mem_assoc k fields = List.mem_assoc k fields
let field k fields = List.assoc_opt k fields

let lint_events events =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let spans = ref 0 in
  let instants = ref 0 in
  (* per (pid,tid): open-B name stack and last timestamp *)
  let stacks : (float * float, string list) Hashtbl.t = Hashtbl.create 8 in
  let last_ts : (float * float, float) Hashtbl.t = Hashtbl.create 8 in
  let tracks = Hashtbl.create 8 in
  List.iteri
    (fun i ev ->
      match ev with
      | Obj fields -> (
          let name =
            match field "name" fields with Some (Str s) -> s | _ -> "?"
          in
          let num k = match field k fields with Some (Num v) -> Some v | _ -> None in
          if not (mem_assoc "name" fields) then err "event %d: missing \"name\"" i;
          match field "ph" fields with
          | Some (Str ph) -> (
              let pid = Option.value (num "pid") ~default:0.0 in
              let tid = Option.value (num "tid") ~default:0.0 in
              let key = (pid, tid) in
              (match ph with
              | "M" -> ()
              | _ -> (
                  Hashtbl.replace tracks key ();
                  match num "ts" with
                  | None -> err "event %d (%s): missing numeric \"ts\"" i name
                  | Some ts ->
                      let prev =
                        Option.value (Hashtbl.find_opt last_ts key) ~default:neg_infinity
                      in
                      if ts < prev then
                        err "event %d (%s): ts %.4f < previous %.4f on tid %.0f" i name ts
                          prev tid;
                      Hashtbl.replace last_ts key ts));
              match ph with
              | "B" ->
                  incr spans;
                  let st = Option.value (Hashtbl.find_opt stacks key) ~default:[] in
                  Hashtbl.replace stacks key (name :: st)
              | "E" -> (
                  match Hashtbl.find_opt stacks key with
                  | Some (top :: rest) ->
                      if top <> name && name <> "?" && mem_assoc "name" fields then
                        err "event %d: E %S closes open B %S on tid %.0f" i name top tid;
                      Hashtbl.replace stacks key rest
                  | _ -> err "event %d: E %S with no open B on tid %.0f" i name tid)
              | "i" | "I" -> incr instants
              | "X" -> incr spans
              | "M" -> ()
              | ph -> err "event %d (%s): unknown ph %S" i name ph)
          | _ -> err "event %d: missing \"ph\"" i)
      | _ -> err "event %d: not an object" i)
    events;
  Hashtbl.iter
    (fun (_, tid) st ->
      match st with
      | [] -> ()
      | names -> err "tid %.0f: %d unbalanced B span(s): %s" tid (List.length names)
                   (String.concat ", " names))
    stacks;
  let wall_tracks =
    Hashtbl.fold (fun (pid, _) () n -> if pid <> 0.0 then n + 1 else n) tracks 0
  in
  {
    events = List.length events;
    spans = !spans;
    instants = !instants;
    tracks = Hashtbl.length tracks;
    wall_tracks;
    errors = List.rev !errors;
  }

let lint_string s =
  let failed msg =
    { events = 0; spans = 0; instants = 0; tracks = 0; wall_tracks = 0; errors = [ msg ] }
  in
  match parse_json s with
  | exception Parse_error msg -> failed ("JSON: " ^ msg)
  | List events -> lint_events events
  | Obj fields -> (
      match field "traceEvents" fields with
      | Some (List events) -> lint_events events
      | _ -> failed "no \"traceEvents\" array")
  | _ -> failed "top level is neither an object nor an array"

let lint_file file =
  let ic = open_in_bin file in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  lint_string s

let report_to_string r =
  let head =
    Printf.sprintf "%d events (%d spans, %d instants) on %d track(s)%s" r.events r.spans
      r.instants r.tracks
      (if r.wall_tracks > 0 then Printf.sprintf ", %d wall-clock" r.wall_tracks else "")
  in
  match r.errors with
  | [] -> head ^ ": OK\n"
  | errs ->
      head ^ ":\n"
      ^ String.concat "\n" (List.map (fun e -> "  error: " ^ e) errs)
      ^ "\n"
