(* Flight recorder: a preallocated ring buffer of spans and instant
   events keyed to *simulated* nanoseconds.

   Recording is SoA over parallel arrays indexed by [count mod cap]:
   one Bytes for the event kind and int/float arrays for the interned
   name, track, timestamp, duration and an optional numeric argument.
   Once the ring is full the oldest events are overwritten (the recorder
   never allocates after creation apart from string interning of names
   it has not seen before, and never fails); [dropped] reports how many
   events were lost to wrap-around.

   The disabled recorder [null] makes every recording call a single
   branch on an immutable bool: no allocation, no writes, no RNG — the
   instrumented drivers stay byte-identical with tracing off. *)

type t = {
  on : bool;
  cap : int;
  kind : Bytes.t; (* 0 = span, 1 = instant *)
  name : int array; (* interned id *)
  track : int array;
  ts : float array;
  dur : float array;
  akey : int array; (* interned arg-key id, -1 = no arg *)
  aval : float array;
  mutable count : int; (* total events ever recorded (monotone) *)
  mutable names : string array; (* id -> string *)
  mutable n_names : int;
  intern_tbl : (string, int) Hashtbl.t;
  clock : float array; (* length 1: simulated-ns cursor (unboxed store) *)
  wall0 : float; (* monotonic wall-clock origin, Unix seconds *)
  mutable track_names : (int * string) list;
}

(* Tracks at or above this id carry wall-clock (monotonic) nanoseconds
   instead of simulated nanoseconds. The two families never mix on one
   track; export puts wall tracks under their own process so a viewer
   (and the lint) treats the clocks independently. *)
let wall_track_base = 1024

let create ?(capacity = 65536) ?wall_origin () =
  let cap = max 16 capacity in
  let wall0 =
    match wall_origin with Some w -> w | None -> Unix.gettimeofday ()
  in
  {
    on = true;
    cap;
    kind = Bytes.make cap '\000';
    name = Array.make cap 0;
    track = Array.make cap 0;
    ts = Array.make cap 0.0;
    dur = Array.make cap 0.0;
    akey = Array.make cap (-1);
    aval = Array.make cap 0.0;
    count = 0;
    names = Array.make 64 "";
    n_names = 0;
    intern_tbl = Hashtbl.create 64;
    clock = [| 0.0 |];
    wall0;
    track_names = [];
  }

let null =
  {
    on = false;
    cap = 0;
    kind = Bytes.empty;
    name = [||];
    track = [||];
    ts = [||];
    dur = [||];
    akey = [||];
    aval = [||];
    count = 0;
    names = [||];
    n_names = 0;
    intern_tbl = Hashtbl.create 1;
    clock = [| 0.0 |];
    wall0 = 0.0;
    track_names = [];
  }

let[@inline] enabled t = t.on
let capacity t = t.cap
let recorded t = t.count
let dropped t = max 0 (t.count - t.cap)

let[@inline] now t = t.clock.(0)
let set_now t v = if t.on then t.clock.(0) <- v
let advance t d = if t.on then t.clock.(0) <- t.clock.(0) +. d
let wall_origin t = t.wall0

(* Wall-clock ns since the recorder's origin. The disabled recorder
   returns 0.0 without touching the system clock, so an uninstrumented
   run makes no syscalls. *)
let wall_now t = if t.on then (Unix.gettimeofday () -. t.wall0) *. 1e9 else 0.0

let intern t s =
  match Hashtbl.find_opt t.intern_tbl s with
  | Some id -> id
  | None ->
      let id = t.n_names in
      if id = Array.length t.names then begin
        let grown = Array.make (2 * id) "" in
        Array.blit t.names 0 grown 0 id;
        t.names <- grown
      end;
      t.names.(id) <- s;
      t.n_names <- id + 1;
      Hashtbl.add t.intern_tbl s id;
      id

let name_track t track label =
  if t.on && not (List.mem_assoc track t.track_names) then
    t.track_names <- (track, label) :: t.track_names

let record t k ~track ~name ~ts ~dur ~akey ~aval =
  let i = t.count mod t.cap in
  Bytes.unsafe_set t.kind i (Char.unsafe_chr k);
  t.name.(i) <- intern t name;
  t.track.(i) <- track;
  t.ts.(i) <- ts;
  t.dur.(i) <- dur;
  t.akey.(i) <- (match akey with None -> -1 | Some key -> intern t key);
  t.aval.(i) <- aval;
  t.count <- t.count + 1

let span t ~track ~name ~ts ~dur =
  if t.on then record t 0 ~track ~name ~ts ~dur ~akey:None ~aval:0.0

let span_arg t ~track ~name ~ts ~dur ~key ~value =
  if t.on then record t 0 ~track ~name ~ts ~dur ~akey:(Some key) ~aval:value

let instant t ~track ~name ~ts =
  if t.on then record t 1 ~track ~name ~ts ~dur:0.0 ~akey:None ~aval:0.0

let instant_arg t ~track ~name ~ts ~key ~value =
  if t.on then record t 1 ~track ~name ~ts ~dur:0.0 ~akey:(Some key) ~aval:value

(* Segment replay for the multi-domain executor: each worker records
   into a private ring on its own clock, and bookkeeping per job
   remembers which slice of which ring the job produced ([recorded]
   before/after) and where the worker's clock stood. At join the caller
   replays the slices in job-index order, shifting each by [dt] so the
   merged timeline is the one a sequential run would have produced —
   every timestamp inside a job is its worker's clock-at-entry plus
   simulated deltas, so a linear shift relocates the job exactly.

   Wall-clock events (track >= wall_track_base) are excluded: their
   timestamps are already absolute against a shared origin, so the
   simulated shift would corrupt them and the per-job slicing would
   drop any recorded between jobs. [append_wall] carries them over
   whole-ring, unshifted, at join. *)
let append_range src ~into ~first ~last ~dt =
  if src.on && into.on then begin
    List.iter
      (fun (track, label) ->
        if track < wall_track_base then name_track into track label)
      (List.rev src.track_names);
    (* events before [count - cap] were lost to ring wrap-around *)
    let lo = max first (src.count - src.cap) in
    for j = lo to min last src.count - 1 do
      let i = j mod src.cap in
      if src.track.(i) < wall_track_base then
        record into
          (Char.code (Bytes.get src.kind i))
          ~track:src.track.(i)
          ~name:src.names.(src.name.(i))
          ~ts:(src.ts.(i) +. dt) ~dur:src.dur.(i)
          ~akey:(if src.akey.(i) < 0 then None else Some src.names.(src.akey.(i)))
          ~aval:src.aval.(i)
    done
  end

let append_wall src ~into =
  if src.on && into.on then begin
    List.iter
      (fun (track, label) ->
        if track >= wall_track_base then name_track into track label)
      (List.rev src.track_names);
    let lo = max 0 (src.count - src.cap) in
    for j = lo to src.count - 1 do
      let i = j mod src.cap in
      if src.track.(i) >= wall_track_base then
        record into
          (Char.code (Bytes.get src.kind i))
          ~track:src.track.(i)
          ~name:src.names.(src.name.(i))
          ~ts:src.ts.(i) ~dur:src.dur.(i)
          ~akey:(if src.akey.(i) < 0 then None else Some src.names.(src.akey.(i)))
          ~aval:src.aval.(i)
    done
  end

type event = {
  e_kind : [ `Span | `Instant ];
  e_name : string;
  e_track : int;
  e_ts : float;
  e_dur : float;
  e_arg : (string * float) option;
}

let fold t ~init ~f =
  let first = max 0 (t.count - t.cap) in
  let acc = ref init in
  for j = first to t.count - 1 do
    let i = j mod t.cap in
    acc :=
      f !acc
        {
          e_kind = (if Bytes.get t.kind i = '\000' then `Span else `Instant);
          e_name = t.names.(t.name.(i));
          e_track = t.track.(i);
          e_ts = t.ts.(i);
          e_dur = t.dur.(i);
          e_arg =
            (if t.akey.(i) < 0 then None else Some (t.names.(t.akey.(i)), t.aval.(i)));
        }
  done;
  !acc

let events t = List.rev (fold t ~init:[] ~f:(fun acc e -> e :: acc))

(* --- Chrome trace-event export ------------------------------------------ *)

(* B/E emission with a per-track span stack. Spans are recorded complete
   (ts + dur) so the export is balanced by construction; the stack walk
   additionally clamps any float-drift or watchdog-truncation overlap so
   the emitted stream is monotone and properly nested per track. *)

type out_event = {
  o_ts : float;
  o_ph : char; (* 'B' | 'E' | 'i' *)
  o_track : int;
  o_name : string;
  o_arg : (string * float) option;
}

let track_events track evs =
  let spans = List.filter (fun e -> e.e_kind = `Span) evs in
  let instants = List.filter (fun e -> e.e_kind = `Instant) evs in
  let spans =
    List.stable_sort
      (fun a b ->
        match compare a.e_ts b.e_ts with 0 -> compare b.e_dur a.e_dur | c -> c)
      spans
  in
  let out = ref [] in
  let pos = ref 0.0 in
  let emit ts ph name arg =
    let ts = Float.max ts !pos in
    out := { o_ts = ts; o_ph = ph; o_track = track; o_name = name; o_arg = arg } :: !out;
    pos := ts
  in
  let stack = ref [] in
  let pop_until limit =
    let rec go () =
      match !stack with
      | (e_end, name) :: rest when e_end <= limit ->
          stack := rest;
          emit e_end 'E' name None;
          go ()
      | _ -> ()
    in
    go ()
  in
  List.iter
    (fun s ->
      let t0 = Float.max s.e_ts !pos in
      pop_until t0;
      let t_end = s.e_ts +. s.e_dur in
      (* clip to the innermost open parent so nesting stays proper *)
      let t_end =
        match !stack with
        | (p_end, _) :: _ when t_end > p_end -> p_end
        | _ -> t_end
      in
      let t_end = Float.max t_end t0 in
      emit t0 'B' s.e_name s.e_arg;
      stack := (t_end, s.e_name) :: !stack)
    spans;
  pop_until infinity;
  let instants =
    List.map
      (fun e -> { o_ts = e.e_ts; o_ph = 'i'; o_track = track; o_name = e.e_name; o_arg = e.e_arg })
      (List.stable_sort (fun a b -> compare a.e_ts b.e_ts) instants)
  in
  List.merge (fun a b -> compare a.o_ts b.o_ts) (List.rev !out) instants

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_json v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

(* Wall-clock tracks are emitted under pid 1 ("host wall clock") so the
   simulated and monotonic timelines never interleave on one thread row
   — the viewer shows two process groups and the lint checks
   monotonicity per (pid, tid). *)
let track_pid track = if track >= wall_track_base then 1 else 0

let to_chrome_json t =
  let evs = events t in
  let tracks = List.sort_uniq compare (List.map (fun e -> e.e_track) evs) in
  let per_track =
    List.concat_map
      (fun tr -> track_events tr (List.filter (fun e -> e.e_track = tr) evs))
      tracks
  in
  let all = List.stable_sort (fun a b -> compare a.o_ts b.o_ts) per_track in
  let has_wall =
    List.exists (fun tr -> tr >= wall_track_base) tracks
    || List.exists (fun (tr, _) -> tr >= wall_track_base) t.track_names
  in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\n\"otherData\":{";
  Buffer.add_string buf
    (Printf.sprintf
       "\"recorded\":%d,\"dropped\":%d,\"clock\":\"simulated-ns\",\"wall_clock\":\"monotonic-ns\""
       t.count (dropped t));
  Buffer.add_string buf "},\n\"traceEvents\":[\n";
  let first = ref true in
  let emit s =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf s
  in
  emit
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"ts\":0,\"args\":{\"name\":\"gpuaco simulated GPU\"}}";
  if has_wall then
    emit
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,\"args\":{\"name\":\"gpuaco host (wall clock)\"}}";
  List.iter
    (fun (track, label) ->
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"ts\":0,\"args\":{\"name\":\"%s\"}}"
           (track_pid track) track (json_escape label)))
    (List.sort compare (List.rev t.track_names));
  List.iter
    (fun e ->
      (* chrome ts is in microseconds; we record nanoseconds *)
      let args =
        match e.o_arg with
        | None -> ""
        | Some (k, v) ->
            Printf.sprintf ",\"args\":{\"%s\":%s}" (json_escape k) (float_json v)
      in
      let scope = if e.o_ph = 'i' then ",\"s\":\"t\"" else "" in
      emit
        (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"%c\",\"pid\":%d,\"tid\":%d,\"ts\":%.4f%s%s}"
           (json_escape e.o_name) e.o_ph (track_pid e.o_track) e.o_track
           (e.o_ts /. 1000.0) scope args))
    all;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write_chrome_json t file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json t))

(* Total span duration by name — the phase breakdown the CLI summary
   prints (where simulated time goes). *)
let span_totals t =
  let tbl = Hashtbl.create 32 in
  fold t ~init:() ~f:(fun () e ->
      if e.e_kind = `Span then begin
        let dur, n = try Hashtbl.find tbl e.e_name with Not_found -> (0.0, 0) in
        Hashtbl.replace tbl e.e_name (dur +. e.e_dur, n + 1)
      end);
  Hashtbl.fold (fun name (dur, n) acc -> (name, dur, n) :: acc) tbl []
  |> List.sort (fun (_, a, _) (_, b, _) -> compare b a)

let instant_counts t =
  let tbl = Hashtbl.create 32 in
  fold t ~init:() ~f:(fun () e ->
      if e.e_kind = `Instant then
        let n = try Hashtbl.find tbl e.e_name with Not_found -> 0 in
        Hashtbl.replace tbl e.e_name (n + 1));
  Hashtbl.fold (fun name n acc -> (name, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
