(** The sequential two-pass ACO scheduler of Shobaki et al. (reference
    [11] of the paper) — the CPU baseline that the GPU parallelization is
    measured against in Tables 3.a/3.b and 5.

    Pass 1 searches for a minimum-RP order while ignoring latencies;
    pass 2 treats the best pass-1 RP as a constraint and searches for the
    shortest latency-feasible schedule (Section IV-A). Each pass stops
    when its lower bound is reached or after
    [Params.termination_condition] improvement-free iterations. *)

type pass_stats = {
  invoked : bool;  (** false when the initial schedule was already at the bound *)
  iterations : int;
  ants_simulated : int;
  work : int;  (** abstract work units (see {!Ant.work}) plus table upkeep *)
  improved : bool;  (** beat the pass's initial schedule *)
  hit_lower_bound : bool;
  aborted_budget : bool;
      (** the pass exhausted its work budget and kept its best-so-far *)
  best_costs : int array;
      (** convergence series: entry 0 is the initial cost, entry [k] the
          best cost after the [k]th iteration *)
  minor_words : float;  (** host minor-heap words allocated during the pass *)
}

val no_pass : pass_stats
(** Stats of a pass that never ran. *)

type result = {
  schedule : Sched.Schedule.t;  (** final latency-valid schedule *)
  cost : Sched.Cost.t;
  heuristic_schedule : Sched.Schedule.t;  (** the AMD baseline schedule *)
  heuristic_cost : Sched.Cost.t;
  rp_target : Sched.Cost.rp;  (** pass-1 outcome, pass-2 constraint *)
  pass2_initial : Sched.Schedule.t;
      (** pass 2's input schedule: the latency-padded pass-1 winner. Kept
          so the pipeline can synthesize what the compiler would emit if
          the cycle-threshold filter skipped pass 2. *)
  pass1 : pass_stats;
  pass2 : pass_stats;
}

val run : ?params:Params.t -> ?seed:int -> Machine.Occupancy.t -> Ddg.Graph.t -> result
(** Schedule a region. Deterministic for a fixed seed. *)

val run_from_setup :
  ?params:Params.t ->
  ?seed:int ->
  ?budget_work:int ->
  ?metrics:Obs.Metrics.t ->
  ?label:string ->
  Setup.t ->
  result
(** Same, reusing an already-prepared {!Setup.t} (the pipeline prepares
    one setup and feeds it to both the sequential and parallel
    drivers so they race from identical starting points).

    [budget_work] (default unlimited) is a compile budget in abstract
    work units shared across both passes: a pass that exhausts it stops
    after the current iteration, keeps its best-so-far, and reports
    [aborted_budget]. The pipeline converts its nanosecond budget to
    work units through its CPU cost model.

    [metrics] (default {!Obs.Metrics.null}) records per-iteration
    best-cost and pheromone-entropy series named ["<label>passN.*"]; a
    disabled registry is a true no-op — schedules, RNG streams and the
    reported [minor_words] stay byte-identical. *)
