(* The execute layer of the compile service: a suite becomes a flat list
   of independent region jobs, the jobs fan out over a persistent domain
   pool with work stealing, and the reports are merged back by index.

   Determinism comes from the split of responsibilities, not from luck:
   everything a job's outcome may depend on — its name, its source
   region, its budget, its backend seeds, its (optional) precomputed
   analysis context — is fixed on the job record before any domain
   starts, and [Compile.run_region] is a pure function of those inputs.
   Which domain runs a job, and in which order jobs are claimed, can
   then only change scheduling, never results; the merge step reassembles
   kernel reports in suite order, so the suite report is canonically
   identical to a sequential compile (see [Report_digest]).

   Scheduling is dynamic LPT: job indices are dealt round-robin into
   per-worker deques in descending size order, each owner pops its own
   biggest job first, and an idle worker steals the *smallest* job from
   a victim's other end — big jobs stay with their owner (locality of
   the analysis-cache line they warmed), small jobs level the tail.

   The shared mutable state of a sequential compile — the metrics
   registry, the flight-recorder ring, the allocation arenas — is
   sharded per worker and merged at join, so the hot loop takes no locks
   beyond the analysis cache's (which itself computes misses outside its
   mutex). Traces merge on the simulated timeline: each job records into
   its worker's private ring, the executor remembers the ring slice and
   clock interval per job, and replays the slices in job-index order
   with a per-slice shift — exactly the timeline a sequential compile
   would have laid down, modulo float rounding of the shifts. *)

type job = {
  j_index : int;
  j_kernel : int;
  j_name : string;
  j_region : Ir.Region.t;
  j_budget_ns : float;
  j_seq_seed : int;
  j_par_seed : int;
}

let jobs_of_suite (config : Compile.config) (suite : Workload.Suite.t) =
  let jobs = ref [] in
  let index = ref 0 in
  List.iteri
    (fun ki (k : Workload.Suite.kernel) ->
      List.iteri
        (fun ri region ->
          let n = Ir.Region.size region in
          jobs :=
            {
              j_index = !index;
              j_kernel = ki;
              j_name = Printf.sprintf "%s/r%d" k.Workload.Suite.kernel_name ri;
              j_region = region;
              j_budget_ns = Robust.budget_for config.Compile.robust ~n;
              j_seq_seed = config.Compile.seq_seed;
              j_par_seed = config.Compile.par_seed;
            }
            :: !jobs;
          incr index)
        k.Workload.Suite.regions)
    suite.Workload.Suite.kernels;
  Array.of_list (List.rev !jobs)

let run_job ?trace ?(metrics = Obs.Metrics.null) ?(log = Obs.Log.null) ?cache
    (config : Compile.config) job =
  let ctx =
    Option.map (fun cache -> Analysis.get cache config.Compile.occ job.j_region) cache
  in
  let config =
    { config with Compile.seq_seed = job.j_seq_seed; par_seed = job.j_par_seed }
  in
  Compile.run_region ?trace ~metrics ~log ?ctx ~budget_ns:job.j_budget_ns config
    ~name:job.j_name job.j_region

(* Deal job indices into [k] deques, round-robin in descending size
   order (ties broken by index so the deal is deterministic). Each deque
   is built by *prepending*, so its array ends up ascending by size:
   the owner pops from the high end (its biggest remaining job), thieves
   steal from the low end (the victim's smallest). *)
let deal_deques work k =
  let njobs = Array.length work in
  let order = Array.init njobs (fun i -> i) in
  Array.sort
    (fun a b ->
      let sa = Ir.Region.size work.(a).j_region
      and sb = Ir.Region.size work.(b).j_region in
      if sa <> sb then compare sb sa else compare a b)
    order;
  let lists = Array.make k [] in
  Array.iteri (fun pos i -> lists.(pos mod k) <- i :: lists.(pos mod k)) order;
  Array.map (fun l -> Support.Ws_deque.create (Array.of_list l)) lists

let run_suite ?(jobs = 1) ?pool ?(progress = fun _ -> ()) ?(trace = Obs.Trace.null)
    ?(metrics = Obs.Metrics.null) ?(log = Obs.Log.null) ?cache
    (config : Compile.config) (suite : Workload.Suite.t) =
  let jobs = max 1 jobs in
  Compile.ensure_backends ();
  let work = jobs_of_suite config suite in
  let njobs = Array.length work in
  let results : Compile.region_report option array = Array.make njobs None in
  let k = min jobs njobs in
  if k <= 1 then
    (* Sequential: record straight into the caller's trace and metrics —
       the byte-exact path every parallel run is measured against. *)
    for i = 0 to njobs - 1 do
      results.(i) <- Some (run_job ~trace ~metrics ~log ?cache config work.(i))
    done
  else begin
    let pool =
      match pool with Some p -> p | None -> Support.Domain_pool.global ()
    in
    let k = min k (Support.Domain_pool.size pool + 1) in
    let deques = deal_deques work k in
    let tracing = Obs.Trace.enabled trace in
    let metering = Obs.Metrics.enabled metrics in
    (* Worker rings share the parent's wall-clock origin so their
       wall-track events land on one absolute axis and merge unshifted. *)
    let rings =
      Array.init k (fun _ ->
          if tracing then
            Obs.Trace.create ~capacity:(Obs.Trace.capacity trace)
              ~wall_origin:(Obs.Trace.wall_origin trace) ()
          else Obs.Trace.null)
    in
    let logs =
      Array.init k (fun w -> Obs.Log.with_fields log [ ("worker", Obs.Log.Int w) ])
    in
    if tracing then
      for w = 0 to k - 1 do
        Obs.Trace.name_track rings.(w)
          (Obs.Trace.wall_track_base + w)
          (Printf.sprintf "worker %d (wall)" w)
      done;
    let shards =
      Array.init k (fun _ -> if metering then Obs.Metrics.create () else Obs.Metrics.null)
    in
    (* Per-job trace-merge bookkeeping: which ring holds the job's
       events, the event-count slice, and the simulated-clock interval. *)
    let seg_worker = Array.make njobs 0 in
    let seg_c0 = Array.make njobs 0 in
    let seg_c1 = Array.make njobs 0 in
    let seg_t0 = Array.make njobs 0.0 in
    let seg_t1 = Array.make njobs 0.0 in
    let steals = Array.make k 0 in
    let empty_polls = Array.make k 0 in
    let run_one w i =
      let ring = rings.(w) in
      let wt0 = Obs.Trace.wall_now ring in
      seg_worker.(i) <- w;
      seg_c0.(i) <- Obs.Trace.recorded ring;
      seg_t0.(i) <- Obs.Trace.now ring;
      results.(i) <-
        Some (run_job ~trace:ring ~metrics:shards.(w) ~log:logs.(w) ?cache config work.(i));
      seg_c1.(i) <- Obs.Trace.recorded ring;
      seg_t1.(i) <- Obs.Trace.now ring;
      (* The job's real duration on this worker, on the wall track —
         what the simulated timeline cannot show (utilization, skew). *)
      if tracing then
        Obs.Trace.span_arg ring
          ~track:(Obs.Trace.wall_track_base + w)
          ~name:("job " ^ work.(i).j_name) ~ts:wt0
          ~dur:(Obs.Trace.wall_now ring -. wt0)
          ~key:"job" ~value:(float_of_int i)
    in
    let worker w =
      let own = deques.(w) in
      let rec drain () =
        match Support.Ws_deque.take own with
        | Some i ->
            run_one w i;
            drain ()
        | None -> ()
      in
      drain ();
      (* Steal sweep: visit the other deques round-robin from our right
         neighbour; a [Lost] race retries the sweep (someone still has
         work), a sweep of nothing but [Empty] means the suite is done.
         The whole sweep becomes one wall span — stolen jobs nest
         inside it, so the gap between them is visible steal stall. *)
      let sw0 = Obs.Trace.wall_now rings.(w) in
      let rec sweep d saw_work =
        if d >= k then begin if saw_work then sweep 1 false end
        else
          match Support.Ws_deque.steal deques.((w + d) mod k) with
          | Support.Ws_deque.Stolen i ->
              steals.(w) <- steals.(w) + 1;
              if tracing then
                Obs.Trace.instant_arg rings.(w)
                  ~track:(Obs.Trace.wall_track_base + w)
                  ~name:"steal"
                  ~ts:(Obs.Trace.wall_now rings.(w))
                  ~key:"job" ~value:(float_of_int i);
              if Obs.Log.enabled logs.(w) then
                Obs.Log.debug logs.(w) "exec.steal"
                  [ ("job", Obs.Log.Int i); ("victim", Obs.Log.Int ((w + d) mod k)) ];
              run_one w i;
              drain ();
              sweep d true
          | Support.Ws_deque.Lost -> sweep d true
          | Support.Ws_deque.Empty ->
              empty_polls.(w) <- empty_polls.(w) + 1;
              sweep (d + 1) saw_work
      in
      sweep 1 false;
      if tracing then
        Obs.Trace.span rings.(w)
          ~track:(Obs.Trace.wall_track_base + w)
          ~name:"steal sweep" ~ts:sw0
          ~dur:(Obs.Trace.wall_now rings.(w) -. sw0)
    in
    let pw0 = Obs.Trace.wall_now trace in
    Support.Domain_pool.run pool ~workers:k worker;
    let pw1 = Obs.Trace.wall_now trace in
    (* Merge, all on the caller. Metrics shards fold in worker order;
       note that *registration order* of names in the merged registry
       follows first-touch across shards, so exports may list the same
       values in a different order than a sequential run. *)
    for w = 0 to k - 1 do
      Obs.Metrics.merge_into shards.(w) ~into:metrics;
      if metering then begin
        Obs.Metrics.add metrics "compile.steal.count" steals.(w);
        Obs.Metrics.add metrics "compile.steal.empty_polls" empty_polls.(w)
      end
    done;
    (* Trace slices replay in job-index order: job [i]'s events shift by
       (merged clock so far - the clock its ring showed when it started),
       which lands them exactly where a sequential compile would have. *)
    if tracing then begin
      let mw0 = Obs.Trace.wall_now trace in
      let off = ref (Obs.Trace.now trace) in
      for i = 0 to njobs - 1 do
        let w = seg_worker.(i) in
        Obs.Trace.append_range rings.(w) ~into:trace ~first:seg_c0.(i) ~last:seg_c1.(i)
          ~dt:(!off -. seg_t0.(i));
        off := !off +. (seg_t1.(i) -. seg_t0.(i))
      done;
      Obs.Trace.set_now trace !off;
      (* Wall-clock events carry over whole-ring and unshifted: their
         timestamps are already absolute against the shared origin. *)
      for w = 0 to k - 1 do
        Obs.Trace.append_wall rings.(w) ~into:trace
      done;
      let caller_track = Obs.Trace.wall_track_base + k in
      Obs.Trace.name_track trace caller_track "executor (wall)";
      Obs.Trace.span_arg trace ~track:caller_track ~name:"pool.run" ~ts:pw0
        ~dur:(pw1 -. pw0) ~key:"workers" ~value:(float_of_int k);
      Obs.Trace.span trace ~track:caller_track ~name:"merge" ~ts:mw0
        ~dur:(Obs.Trace.wall_now trace -. mw0)
    end
  end;
  let report_of i =
    match results.(i) with
    | Some r -> r
    | None -> invalid_arg "Executor.run_suite: job finished without a report"
  in
  (* Merge by index: [work] was built in suite order, so consecutive
     indices within one kernel are its regions in order. *)
  let cursor = ref 0 in
  let kernels =
    List.map
      (fun (k : Workload.Suite.kernel) ->
        progress k.Workload.Suite.kernel_name;
        let regions =
          List.map
            (fun _ ->
              let r = report_of !cursor in
              incr cursor;
              r)
            k.Workload.Suite.regions
        in
        { Compile.kernel = k; regions })
      suite.Workload.Suite.kernels
  in
  {
    Compile.suite;
    compile_config = config;
    kernels;
  }
