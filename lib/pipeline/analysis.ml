(* Content-addressed cache of region-analysis contexts.

   The key is the region's structural fingerprint (instruction kinds,
   latencies, register defs/uses and live-outs — names excluded, see
   [Engine.Region_ctx.fingerprint_of_region]) salted with the occupancy
   model, so two regions that compile identically share one analysis no
   matter which kernel they came from.

   All operations take one mutex. A miss computes the context *under the
   lock*: concurrent domain workers asking for the same fingerprint must
   never both analyse it — the compile service's invariant is exactly one
   analysis per distinct region, and the cache is where it is enforced.
   Analysis is cheap next to the ACO passes that follow, so the
   serialization is invisible in practice. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  computed : int;
  entries : int;
  capacity : int;
}

type entry = { e_ctx : Engine.Region_ctx.t; mutable e_used : int }

type t = {
  capacity : int;
  metrics : Obs.Metrics.t;
  lock : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable computed : int;
}

let default_capacity = 512

let create ?(metrics = Obs.Metrics.null) ?(capacity = default_capacity) () =
  {
    capacity = max 0 capacity;
    metrics;
    lock = Mutex.create ();
    tbl = Hashtbl.create 64;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    computed = 0;
  }

let disabled () = create ~capacity:0 ()

let caching t = t.capacity > 0

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Occupancy is part of the analysis (heuristic costs, RP bounds), so it
   salts the key; [Occupancy.t] is plain data, so Marshal is a faithful
   rendering. *)
let key_of occ region =
  let fingerprint = Engine.Region_ctx.fingerprint_of_region region in
  (Digest.to_hex (Digest.string (Marshal.to_string occ [])) ^ ":" ^ fingerprint, fingerprint)

(* Lock held. Linear scan over the table: capacities are small (hundreds)
   and eviction only happens on a miss that also ran a full analysis. *)
let evict_if_full t =
  if Hashtbl.length t.tbl >= t.capacity then begin
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match acc with
          | Some (_, best) when best <= e.e_used -> acc
          | _ -> Some (k, e.e_used))
        t.tbl None
    in
    match victim with
    | Some (k, _) ->
        Hashtbl.remove t.tbl k;
        t.evictions <- t.evictions + 1;
        Obs.Metrics.incr t.metrics "analysis.cache.evictions"
    | None -> ()
  end

let miss t key ~fingerprint occ region =
  t.misses <- t.misses + 1;
  t.computed <- t.computed + 1;
  Obs.Metrics.incr t.metrics "analysis.cache.misses";
  Obs.Metrics.incr t.metrics "analysis.cache.computed";
  let rc = Engine.Region_ctx.of_region ~fingerprint occ region in
  if t.capacity > 0 then begin
    evict_if_full t;
    Hashtbl.add t.tbl key { e_ctx = rc; e_used = t.tick }
  end;
  rc

let get t occ region =
  let key, fingerprint = key_of occ region in
  locked t (fun () ->
      t.tick <- t.tick + 1;
      if t.capacity = 0 then miss t key ~fingerprint occ region
      else
        match Hashtbl.find_opt t.tbl key with
        | Some e ->
            e.e_used <- t.tick;
            t.hits <- t.hits + 1;
            Obs.Metrics.incr t.metrics "analysis.cache.hits";
            e.e_ctx
        | None -> miss t key ~fingerprint occ region)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        computed = t.computed;
        entries = Hashtbl.length t.tbl;
        capacity = t.capacity;
      })

let hit_rate (s : stats) =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "analysis cache: %d hits, %d misses (%.0f%% hit rate), %d computed, %d evicted, \
     %d/%d entries"
    s.hits s.misses
    (100.0 *. hit_rate s)
    s.computed s.evictions s.entries s.capacity
