(** Transitive closure of the DDG and independence counting.

    Section V-A of the paper uses the transitive closure to compute a
    tight upper bound on the ready-list size: the ready list only ever
    holds pairwise-independent instructions, so one plus the maximum
    number of instructions independent of any single instruction bounds
    its size. That bound sizes the fixed GPU-side arrays that replace
    dynamically allocated lists. *)

type t

val compute : Graph.t -> t
(** Bitset-based closure: O(V * E / word_size). *)

val compute_count : unit -> int
(** Process-wide number of {!compute} invocations (domain-safe,
    monotonic). The compile pipeline's analysis cache asserts on deltas
    of this counter to prove each distinct region is analysed exactly
    once. *)

val reaches : t -> int -> int -> bool
(** [reaches c i j] is true when there is a (non-empty) dependence path
    from [i] to [j]. *)

val independent : t -> int -> int -> bool
(** Neither reaches the other and [i <> j]. *)

val independent_count : t -> int -> int
(** Number of nodes independent of node [i]. *)

val max_independent : t -> int
(** Maximum of [independent_count] over all nodes. *)

val ready_list_upper_bound : t -> int
(** [max_independent + 1], the paper's tight ready-list bound
    (Section V-A; 5 for the example DDG of Figure 1.a). *)

val descendants : t -> int -> Support.Bitset.t
(** All nodes reachable from [i] (excluding [i]). The returned set is the
    closure's internal state: do not mutate. *)

val ancestors : t -> int -> Support.Bitset.t
