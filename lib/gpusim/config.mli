(** Configuration of the SIMT simulator on which the parallel ACO
    scheduler runs.

    This is the substitution for the paper's HIP/ROCm runtime on a Radeon
    VII (see DESIGN.md): the parallel algorithm executes for real — every
    ant constructs a real schedule — while its *time* is charged by the
    simulator according to SIMT cost rules (lockstep path serialization,
    memory-transaction coalescing, launch and copy overheads).

    Cost constants are documented calibration points, not curve fits:
    - [cpu_ns_per_op]: one abstract work unit on the host CPU (a ready
      list entry scan, a successor update, selection arithmetic);
    - [gpu_ns_per_op]: the same unit on one SIMT lane — slower clock,
      no out-of-order window, higher latency per access;
    - [mem_transaction_ns]: one coalesced memory transaction;
    - [launch_overhead_ns]: device allocation + H2D copy setup + a
      cooperative kernel launch (charged once per ACO invocation);
    - [copy_ns_per_word]: size-dependent part of the H2D/D2H copies;
    - [sync_overhead_ns]: one grid-wide synchronization. *)

type opts = {
  coalesced_layout : bool;
      (** SoA column-per-thread layout of per-ant structures (Section V-A) *)
  batched_alloc : bool;
      (** one consolidated allocation + copy instead of per-structure calls *)
  tight_ready_ub : bool;
      (** size ready arrays by the transitive-closure bound instead of [n] *)
  wavefront_level_explore : bool;
      (** the explore/exploit coin is flipped once per wavefront per step *)
  optional_stall_fraction : float;
      (** fraction of wavefronts allowed to insert optional stalls *)
  early_wavefront_termination : bool;
      (** kill a wavefront's remaining ants once one finishes *)
  per_wavefront_heuristic : bool;
      (** different wavefronts use different guiding heuristics *)
  ready_list_limiting : [ `Off | `Min | `Mid ];
      (** unify per-lane ready-list scan lengths within a wavefront by
          capping them at the minimum (or the min/max midpoint) across
          the wavefront's lanes — the Section V-B experiment the paper
          reports as *not* improving overall results; [`Off] in every
          preset, kept as a first-class toggle so the negative result is
          reproducible (see the bench harness's extras) *)
}

val opts_paper : opts
(** The settings behind the paper's headline numbers: every optimization
    on, 25% of wavefronts inserting optional stalls (Table 6). *)

val opts_no_memory : opts
(** Memory optimizations off, divergence optimizations on (Table 4.a's
    baseline). *)

val opts_no_divergence : opts
(** Divergence optimizations off, memory optimizations on (Table 4.b's
    baseline; optional stalls unrestricted, i.e. fraction 1.0). *)

type fault_rates = {
  lane_fault_rate : float;
      (** per lane per iteration: a transient fault corrupts the ant's
          next-instruction choice; the lane is quarantined for the
          iteration (its candidate is discarded) *)
  wavefront_hang_rate : float;
      (** per wavefront per iteration: the whole wavefront hangs and is
          recovered by the watchdog at a fixed detection penalty *)
  reduction_drop_rate : float;
      (** per iteration: the winner message of the tree reduction is
          lost, so the iteration yields no winner *)
  mem_fault_rate : float;
      (** per wavefront per lockstep step: a memory transaction errors
          and the step's transactions are replayed once *)
}

val no_faults : fault_rates
(** All rates zero — the default; behaviour is byte-identical to a build
    without the fault model. *)

val uniform_faults : float -> fault_rates
(** [uniform_faults r] expands one headline rate (clamped to [0,1]) into
    per-class rates: lane faults at [r], memory replays and reduction
    drops at [r/4], hangs at [r/16]. *)

val faults_enabled : fault_rates -> bool

type t = {
  target : Machine.Target.t;  (** GPU the scheduler runs on *)
  num_wavefronts : int;  (** launched blocks; one wavefront per block *)
  cpu_ns_per_op : float;
  gpu_ns_per_op : float;
  mem_transaction_ns : float;
  launch_overhead_ns : float;
  copy_ns_per_word : float;
  sync_overhead_ns : float;
  alloc_call_ns : float;  (** one discrete allocation/copy call (unbatched mode) *)
  opts : opts;
  faults : fault_rates;  (** injected-fault rates ({!no_faults} by default) *)
  fault_seed : int;
      (** seed of the fault injector's own RNG stream — faults are a
          deterministic function of this seed and never perturb the
          ants' RNG streams *)
}

val default : t
(** Paper geometry — Vega 20, 180 wavefronts (11,520 ants) — with
    calibrated cost constants and [opts_paper]. *)

val bench : t
(** Reduced geometry used by the benchmark harness (fewer wavefronts so a
    laptop-scale reproduction completes); same cost constants. *)

val with_opts : t -> opts -> t

val with_faults : ?seed:int -> t -> fault_rates -> t

val reseed_faults : t -> salt:int -> t
(** The same configuration with [fault_seed] replaced by a deterministic
    mix of the current seed and [salt] — how the serve loop gives each
    retry attempt a fresh, replayable fault stream ([salt] = attempt
    number) without touching the ants' RNG streams. [salt = 0] is the
    identity, so attempt 0 replays the request's own seed. *)

val threads : t -> int
(** Total ants per launch: wavefronts x wavefront size. *)
