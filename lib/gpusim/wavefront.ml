type t = {
  config : Config.t;
  ants : Aco.Ant.t array;
  params : Aco.Params.t;
  heuristic : Sched.Heuristic.kind;
  allow_optional : bool;
  arena : Support.Arena.t;
  fmat : Support.Fmat.t;
  arena_words : int;
  fault_at : int array;  (* per-lane injected fault step, -1 = none *)
  maxima : int array;  (* per-path-rank max op cost of one lockstep step *)
  (* Observability hooks. Mutable fields (not optional arguments) so the
     per-iteration call adds no [Some] wrapping inside the measured
     minor-words window; scratch arrays are preallocated here so the
     traced path needs no fresh refs in the hot loop either. *)
  mutable trace : Obs.Trace.t;
  mutable metrics : Obs.Metrics.t;
  mutable track : int;
  (* Simulated-time cursors shared with the driver: [obs_cursor].(1) is
     the current iteration's start and [simd_cursor].(simd) the summed
     time of earlier wavefronts on this SIMD unit. Owned by the driver
     and installed via [set_obs]; reachable through [t] so the traced
     hot loops capture nothing beyond what the untraced ones do. *)
  mutable obs_cursor : float array;
  mutable simd_cursor : float array;
  mutable simd : int;
  obs_f : float array;  (* [0] = round start, [1] = iteration base (traced only) *)
  obs_i : int array;  (* [0] = optional stalls this iteration *)
}

let create ?shared config graph params ~heuristic ~allow_optional_stalls =
  let lanes = config.Config.target.Machine.Target.wavefront_size in
  let shared = match shared with Some s -> s | None -> Aco.Ant.prepare_shared graph in
  let ints, floats = Aco.Ant.arena_demand shared in
  let fmat_rows, fmat_cols = Aco.Ant.fmat_demand shared in
  let arena = Support.Arena.take ~ints:(lanes * ints) ~floats:(lanes * floats) in
  let fmat = Support.Fmat.take ~rows:(lanes * fmat_rows) ~cols:fmat_cols in
  {
    config;
    ants =
      Array.init lanes (fun lane ->
          Aco.Ant.create ~shared ~arena ~fmat:(fmat, lane * fmat_rows) graph params);
    params;
    heuristic;
    allow_optional = allow_optional_stalls;
    arena;
    fmat;
    arena_words = Support.Arena.words arena;
    fault_at = Array.make lanes (-1);
    maxima = Array.make 5 0;
    trace = Obs.Trace.null;
    metrics = Obs.Metrics.null;
    track = 0;
    obs_cursor = Array.make 2 0.0;
    simd_cursor = Array.make 1 0.0;
    simd = 0;
    obs_f = Array.make 2 0.0;
    obs_i = Array.make 1 0;
  }

let lanes t = Array.length t.ants

let arena_words t = t.arena_words

(* Returns the arena to the domain-local pool. The wavefront must not run
   again afterwards — the par_aco backend retires at teardown, after the
   best schedule has been copied out of the lanes. *)
let retire t =
  Support.Arena.give t.arena;
  Support.Fmat.give t.fmat

(* Candidate meters, summed over the lanes. Cumulative (the trackers are
   never reset); drivers snapshot deltas around a pass, outside their
   minor-words windows. *)
let scored_candidates t =
  Array.fold_left (fun acc a -> acc + Aco.Ant.scored_candidates a) 0 t.ants

let pruned_candidates t =
  Array.fold_left (fun acc a -> acc + Aco.Ant.pruned_candidates a) 0 t.ants

let set_obs t ~trace ~metrics ~track ~obs_cursor ~simd_cursor ~simd =
  t.trace <- trace;
  t.metrics <- metrics;
  t.track <- track;
  t.obs_cursor <- obs_cursor;
  t.simd_cursor <- simd_cursor;
  t.simd <- simd

type outcome = {
  time_ns : float;
  work : int;
  serialized_ops : int;
  single_path_ops : int;
  steps : int;
  ant_steps : int;
  selections : int;
  finished : Aco.Ant.t list;
  hung : bool;
  quarantined : int;
  mem_faults : int;
}

let hang_outcome =
  {
    time_ns = Faults.hang_penalty_ns;
    work = 0;
    serialized_ops = 0;
    single_path_ops = 0;
    steps = 0;
    ant_steps = 0;
    selections = 0;
    finished = [];
    hung = true;
    quarantined = 0;
    mem_faults = 0;
  }

let run_iteration ?(faults = Faults.disabled) t ~rng ~mode ~pheromone =
  let config = t.config in
  let opts = config.Config.opts in
  let tr = t.trace in
  let tracing = Obs.Trace.enabled tr in
  let ms = t.metrics in
  let metering = Obs.Metrics.enabled ms in
  (* Guarded read: the cursors are driver-owned scratch, so this costs no
     allocation; computing it only under [tracing] keeps even the float
     arithmetic off the untraced path. *)
  let base = if tracing then t.obs_cursor.(1) +. t.simd_cursor.(t.simd) else 0.0 in
  if tracing then t.obs_f.(1) <- base;
  if Faults.enabled faults && Faults.wavefront_hang faults then begin
    if tracing then begin
      Obs.Trace.instant tr ~track:t.track ~name:"wavefront_hang" ~ts:base;
      t.simd_cursor.(t.simd) <- t.simd_cursor.(t.simd) +. Faults.hang_penalty_ns
    end;
    if metering then Obs.Metrics.incr ms "faults.wavefront_hang";
    hang_outcome
  end
  else begin
  Array.iter
    (fun ant ->
      Aco.Ant.start ant ~rng:(Support.Rng.split rng) ~heuristic:t.heuristic
        ~allow_optional_stalls:t.allow_optional mode)
    t.ants;
  (* Transient lane faults are decided up front (one trial per lane per
     iteration) and strike at an injector-chosen construction step: the
     corrupted lane's candidate can no longer be trusted, so the lane is
     killed — quarantined for the iteration. Partial work is still
     charged: the fault does not refund the time already spent. *)
  let faults_on = Faults.enabled faults in
  if faults_on then begin
    let graph_n = Aco.Pheromone.size pheromone in
    for i = 0 to Array.length t.ants - 1 do
      t.fault_at.(i) <-
        (if Faults.lane_fault faults then 1 + Faults.pick faults (max 1 graph_n) else -1)
    done
  end;
  let quarantined = ref 0 in
  let mem_faults = ref 0 in
  let time = ref 0.0 in
  let serialized = ref 0 in
  let single = ref 0 in
  let steps = ref 0 in
  let ant_steps = ref 0 in
  let selections = ref 0 in
  t.obs_i.(0) <- 0;
  let any_active () = Array.exists (fun a -> Aco.Ant.status a = Aco.Ant.Active) t.ants in
  while any_active () do
    incr steps;
    if tracing then t.obs_f.(0) <- !time;
    if faults_on then
      Array.iteri
        (fun i ant ->
          if t.fault_at.(i) = !steps && Aco.Ant.status ant = Aco.Ant.Active then begin
            Aco.Ant.kill ant;
            incr quarantined;
            (* Everything here goes through [t] and its scratch arrays
               ([t.obs_f.(1)] = base, [t.obs_f.(0)] = round start), never
               through [time]/[base]/[tr]/[ms] directly: capturing the
               [time] float ref would defeat its unboxing, and any extra
               capture grows this per-round closure on the untraced path. *)
            if Obs.Trace.enabled t.trace then
              Obs.Trace.instant_arg t.trace ~track:t.track ~name:"lane_fault"
                ~ts:(t.obs_f.(1) +. t.obs_f.(0))
                ~key:"lane" ~value:(float_of_int i);
            if Obs.Metrics.enabled t.metrics then
              Obs.Metrics.incr t.metrics "faults.lane_quarantined"
          end)
        t.ants;
    let force_explore =
      if opts.Config.wavefront_level_explore then
        (* exploit on heads: [step] received [Some (not coin)] *)
        if Support.Rng.bool rng t.params.Aco.Params.q0 then 0 else 1
      else -1
    in
    let ready_limit =
      match opts.Config.ready_list_limiting with
      | `Off -> 0
      | (`Min | `Mid) as mode ->
          let mn = ref max_int and mx = ref 0 in
          Array.iter
            (fun ant ->
              if Aco.Ant.status ant = Aco.Ant.Active then begin
                let c = Aco.Ant.ready_count ant in
                if c < !mn then mn := c;
                if c > !mx then mx := c
              end)
            t.ants;
          if !mn = max_int then 0
          else max 1 (match mode with `Min -> !mn | `Mid -> (!mn + !mx + 1) / 2)
    in
    if metering then begin
      (* ready-list occupancy across active lanes at round start *)
      let sum = ref 0 and act = ref 0 in
      Array.iter
        (fun ant ->
          if Aco.Ant.status ant = Aco.Ant.Active then begin
            sum := !sum + Aco.Ant.ready_count ant;
            incr act
          end)
        t.ants;
      if !act > 0 then
        Obs.Metrics.observe ms "wavefront.ready_occupancy"
          (float_of_int !sum /. float_of_int !act)
    end;
    Array.fill t.maxima 0 5 0;
    let reads_max = ref 0 and reads_sum = ref 0 and stepped = ref 0 in
    Array.iter
      (fun ant ->
        if Aco.Ant.status ant = Aco.Ant.Active then begin
          Aco.Ant.step_hot ant ~pheromone ~force_explore ~ready_limit;
          let rank = Aco.Ant.last_rank ant in
          (* optional-stall tally for metrics; unconditional int store so
             the closure captures nothing extra *)
          if rank = 3 then t.obs_i.(0) <- t.obs_i.(0) + 1;
          let sc = Aco.Ant.last_scanned ant and su = Aco.Ant.last_succs ant in
          let cost = Divergence.cost_of ~ready_scanned:sc ~succs_updated:su in
          if cost > t.maxima.(rank) then t.maxima.(rank) <- cost;
          let reads = Divergence.reads_of ~ready_scanned:sc ~succs_updated:su in
          if reads > !reads_max then reads_max := reads;
          reads_sum := !reads_sum + reads;
          if rank <= 1 then incr selections;
          incr stepped
        end)
      t.ants;
    ant_steps := !ant_steps + !stepped;
    let serialized_step = Divergence.serialized_of_maxima t.maxima in
    let transactions =
      Mem_model.step_transactions_acc config ~active:!stepped ~reads_max:!reads_max
        ~reads_sum:!reads_sum
    in
    (* A memory-transaction error forces a replay of the step's
       transactions: same data, double the time. *)
    let transactions =
      if faults_on && transactions > 0 && Faults.mem_fault faults then begin
        incr mem_faults;
        if tracing then
          Obs.Trace.instant tr ~track:t.track ~name:"mem_fault_replay"
            ~ts:(base +. !time);
        if metering then Obs.Metrics.incr ms "faults.mem_replay";
        2 * transactions
      end
      else transactions
    in
    time :=
      !time
      +. (float_of_int serialized_step *. config.Config.gpu_ns_per_op)
      +. (float_of_int transactions *. config.Config.mem_transaction_ns);
    if tracing then
      Obs.Trace.span_arg tr ~track:t.track ~name:"lockstep_round"
        ~ts:(base +. t.obs_f.(0))
        ~dur:(!time -. t.obs_f.(0))
        ~key:"active" ~value:(float_of_int !stepped);
    serialized := !serialized + serialized_step;
    single := !single + Divergence.max_single_of_maxima t.maxima;
    (* Early wavefront termination: a finisher used the fewest cycles any
       lane of this wavefront can still achieve, so the rest cannot win
       the iteration (Section V-B). *)
    if
      opts.Config.early_wavefront_termination
      && Array.exists (fun a -> Aco.Ant.status a = Aco.Ant.Finished) t.ants
    then
      Array.iter (fun a -> if Aco.Ant.status a = Aco.Ant.Active then Aco.Ant.kill a) t.ants
  done;
  if tracing then t.simd_cursor.(t.simd) <- t.simd_cursor.(t.simd) +. !time;
  if metering then begin
    Obs.Metrics.add ms "wavefront.optional_stalls" t.obs_i.(0);
    if !single > 0 then
      Obs.Metrics.observe ms "wavefront.serialization_ratio"
        (float_of_int !serialized /. float_of_int !single)
  end;
  let work = Array.fold_left (fun acc a -> acc + Aco.Ant.work a) 0 t.ants in
  let finished =
    Array.fold_left
      (fun acc a -> if Aco.Ant.status a = Aco.Ant.Finished then a :: acc else acc)
      [] t.ants
    |> List.rev
  in
  {
    time_ns = !time;
    work;
    serialized_ops = !serialized;
    single_path_ops = !single;
    steps = !steps;
    ant_steps = !ant_steps;
    selections = !selections;
    finished;
    hung = false;
    quarantined = !quarantined;
    mem_faults = !mem_faults;
  }
  end
