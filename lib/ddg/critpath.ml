type t = { fwd : int array; bwd : int array }

let compute (g : Graph.t) =
  let n = g.n in
  let fwd = Array.make n 0 and bwd = Array.make n 0 in
  let order = Topo.order g in
  Array.iter
    (fun i ->
      Array.iter (fun (j, lat) -> fwd.(j) <- max fwd.(j) (fwd.(i) + lat)) g.succs.(i))
    order;
  let rev = Topo.reverse_order g in
  Array.iter
    (fun i ->
      Array.iter (fun (j, lat) -> bwd.(j) <- max bwd.(j) (bwd.(i) + lat)) g.preds.(i))
    rev;
  { fwd; bwd }

let forward t i = t.fwd.(i)
let backward t i = t.bwd.(i)
let through t i = t.fwd.(i) + t.bwd.(i)

let critical_path_length t =
  let m = ref 0 in
  for i = 0 to Array.length t.fwd - 1 do
    m := max !m (through t i)
  done;
  !m
