(** Issue model of the target processor.

    The paper's experiments use a simple machine model: one instruction
    of any type per cycle, with latencies respected (Section II-A). The
    model is kept behind an interface so a multi-issue model can be
    swapped in; [single_issue] is the one used by every experiment. *)

type t

val single_issue : t

val make : issue_width:int -> t
(** A width-[w] model: at most [w] instructions per cycle. Raises
    [Invalid_argument] for non-positive width. *)

val issue_width : t -> int

val slots_per_cycle : t -> Ir.Opcode.kind -> int
(** How many instructions of the given kind may issue in one cycle; the
    simple model returns [issue_width] for every kind. *)
