(** Validation for Chrome trace-event JSON (used by [gpuaco trace --lint]
    and CI): well-formed JSON, required event keys, known phases, monotone
    timestamps per track, and balanced, name-matched [B]/[E] span pairs.

    Carries its own minimal JSON parser so the lint needs no external
    dependency. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

val parse_json : string -> json
(** Parse a complete JSON document. @raise Parse_error on malformed input. *)

type report = {
  events : int;
  spans : int;  (** [B] (and [X]) events *)
  instants : int;
  tracks : int;  (** distinct (pid, tid) pairs seen on non-metadata events *)
  wall_tracks : int;
      (** the subset of [tracks] under a nonzero pid — the wall-clock
          process {!Trace.to_chrome_json} emits for tracks at or above
          {!Trace.wall_track_base}. Monotonicity and balance are
          checked per (pid, tid), so mixed-clock documents lint each
          clock independently. *)
  errors : string list;
}

val ok : report -> bool

val lint_string : string -> report
(** Lint a trace document: either a bare event array or an object with a
    ["traceEvents"] array. Never raises; parse failures land in [errors]. *)

val lint_file : string -> report

val report_to_string : report -> string
