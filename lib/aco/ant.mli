(** A single ant constructing one candidate schedule, exposed as an
    explicit step machine.

    The step interface exists because the parallel driver executes the 64
    ants of a wavefront in lockstep, one construction step per simulated
    GPU step (Section IV-B); the sequential driver simply steps each ant
    to completion in turn. Each step reports what kind of operation the
    ant performed and how much work it scanned, which is exactly what the
    divergence and memory models of the GPU simulator charge for.

    All per-ant state (ready list arrays, RP tracker, slot buffer,
    candidate scratch) is allocated once at [create] — batched into a
    caller-supplied {!Support.Arena} when ants form a colony — and reused
    across iterations, mirroring the paper's
    no-dynamic-allocation-on-the-GPU rule (Section V-A). The stepping
    fast path ({!step_hot}) allocates nothing: candidates are scored over
    an array slice with reusable scratch buffers sized by the
    transitive-closure ready-list bound. *)

type mode = Rp_pass | Ilp_pass of { target_vgpr : int; target_sgpr : int }

type status = Active | Finished | Dead

type op =
  | Selected of { instr : int; explored : bool }
  | Mandatory_stall
  | Optional_stall
  | Died  (** could not proceed without breaching the pass-2 RP target *)

type event = {
  op : op;
  ready_scanned : int;  (** ready-list entries examined at this step *)
  succs_updated : int;  (** successor-list length traversed *)
}

type shared
(** Region-wide analyses shared by every ant of a colony: critical path,
    register layout, transitive-closure ready-list bound. *)

val prepare_shared :
  ?cp:Ddg.Critpath.t ->
  ?layout:Sched.Rp_tracker.layout ->
  ?ready_ub:int ->
  Ddg.Graph.t ->
  shared
(** Omitted analyses are computed from the graph; passing them reuses
    work already done elsewhere (notably a shared
    {!Engine.Region_ctx.t}). *)

val shared_of_region_ctx : Engine.Region_ctx.t -> shared
(** [prepare_shared] fed entirely from the region context's precomputed
    analyses — no graph traversal, no closure recomputation. *)

val shared_ready_ub : shared -> int
(** The transitive-closure ready-list bound, for drivers that also size
    their memory model by it. *)

val arena_demand : shared -> int * int
(** [(ints, floats)] one ant's arena state needs; a colony arena is
    sized as lanes times this (exact pre-sizing, no growth). All float
    state lives in the score matrix ({!fmat_demand}) since the unboxed
    data-plane refactor, so the float demand is 0. *)

val fmat_demand : shared -> int * int
(** [(rows, cols)] of one ant's slice of the unboxed score matrix
    ({!Support.Fmat}): the selection scratch row (scores, roulette
    total, wheel accumulator), two precomputed eta^beta table rows and
    the LUC eta scratch row. A colony matrix is sized as
    [lanes * rows] by [cols] and carved per ant via [?fmat]. *)

type t

val create :
  ?shared:shared ->
  ?arena:Support.Arena.t ->
  ?fmat:Support.Fmat.t * int ->
  Ddg.Graph.t ->
  Params.t ->
  t
(** Without [shared], the region analyses are computed privately (and
    the scratch bound falls back to [n]). Without [arena], a private
    exactly-sized arena backs this ant alone. [?fmat] is [(matrix,
    first_row)]: the ant's {!fmat_demand} rows of a pooled colony score
    matrix; without it a private matrix is created. Raises
    [Invalid_argument] when [shared] belongs to a different graph, the
    arena is too small, or the matrix slice is out of range. *)

val start :
  t ->
  rng:Support.Rng.t ->
  heuristic:Sched.Heuristic.kind ->
  allow_optional_stalls:bool ->
  mode ->
  unit
(** Reset all reusable state and begin constructing a new schedule. *)

val status : t -> status

val step : ?force_explore:bool -> ?ready_limit:int -> t -> pheromone:Pheromone.t -> event
(** Perform one construction step. [force_explore] overrides the ant's
    own exploration coin flip — the wavefront-level
    exploration/exploitation unification of Section V-B. [ready_limit]
    caps how many ready-list entries the ant scans this step — the
    ready-list-size unification the paper experimented with (and found
    unhelpful overall, Section V-B); correctness is unaffected because
    deferred candidates remain in the list for later steps. Raises
    [Invalid_argument] when the ant is not [Active]. *)

val step_hot : t -> pheromone:Pheromone.t -> force_explore:int -> ready_limit:int -> unit
(** Allocation-free {!step}: [force_explore] is [-1] (ant draws its own
    coin), [0] (exploit) or [1] (explore); [ready_limit] is [0] for
    unlimited. Instead of returning an event record, the step's kind and
    costs land in the [last_*] accessors below. Identical construction
    and RNG consumption to {!step}. *)

val last_rank : t -> int
(** Path rank of the last step, matching {!Divergence.path_rank}:
    0 exploiting selection, 1 exploring selection, 2 mandatory stall,
    3 optional stall, 4 death. *)

val last_scanned : t -> int
(** [ready_scanned] of the last step. *)

val last_succs : t -> int
(** [succs_updated] of the last step. *)

val ready_count : t -> int
(** Current ready-list size (0 when the ant is not [Active]); the
    wavefront driver uses it to compute a common [ready_limit]. *)

val kill : t -> unit
(** Early wavefront termination (Section V-B): mark the ant [Dead]. *)

val run_to_completion : ?force_explore:bool -> t -> pheromone:Pheromone.t -> unit
(** Step until no longer active (sequential driver). *)

val order : t -> int array
(** Issue order of the constructed schedule (valid once [Finished]). *)

val schedule : t -> Sched.Schedule.t option
(** The validated schedule, or [None] unless [Finished]. Pass-1
    schedules validate without latencies, pass-2 schedules with. *)

val rp_peaks : t -> int * int
(** (VGPR, SGPR) peak pressures of the construction so far. *)

val length : t -> int
(** Cycles used so far (slots emitted). *)

val optional_stalls : t -> int

val work : t -> int
(** Abstract work units accumulated since [start] (ready-list scans +
    successor updates + per-step constant) — the currency of the CPU and
    GPU time models. *)

val set_prune : t -> bool -> unit
(** Arm lower-bound candidate pruning in the ant's RP tracker
    ({!Sched.Rp_tracker.set_prune}): pass-2 candidates that provably
    cannot fit the RP target skip the per-register fit scan. Sound-only
    — schedules and RNG streams are unchanged; only work and the meters
    below move. Off by default. *)

val prune_enabled : t -> bool

val scored_candidates : t -> int
(** Cumulative fit-evaluated candidate count
    ({!Sched.Rp_tracker.scored_candidates}); not reset by {!start} —
    drivers snapshot it around a pass. *)

val pruned_candidates : t -> int
(** Cumulative pruned candidate count
    ({!Sched.Rp_tracker.pruned_candidates}). *)
