(** Ablations of the GPU optimizations (Tables 4.a, 4.b and 6).

    Each ablation re-runs the parallel ACO scheduler on the ACO-processed
    regions of a compiled suite under two option sets and compares the
    simulated scheduling times (and, for the optional-stall sweep, the
    schedule lengths). Reported percentages follow the paper's
    convention: improvement of B over A is [(time_A - time_B) / time_B],
    so "+600%" means the unoptimized configuration is 7x slower. *)

type time_row = {
  category : int;
  pass1_overall_pct : float;  (** improvement aggregated over all regions *)
  pass1_max_pct : float;  (** best improvement on any single region *)
  pass2_overall_pct : float;
  pass2_max_pct : float;
}

val compare_opts :
  Compile.config ->
  Compile.suite_report ->
  baseline:Gpusim.Config.opts ->
  optimized:Gpusim.Config.opts ->
  time_row list
(** One row per size category. Regions are those where the compiled
    suite invoked the corresponding ACO pass. *)

type stall_row = {
  fraction : float;
  aco_time_increase_pct : float;  (** vs. zero stalling wavefronts *)
  length_improvement_pct : float;
  max_length_improvement_pct : float;
}

val stall_fraction_sweep :
  Compile.config ->
  Compile.suite_report ->
  fractions:float list ->
  min_region_size:int ->
  stall_row list
(** The Table 6 experiment: regions of at least [min_region_size]
    instructions, each fraction against the 0%% baseline. *)

type ready_limit_row = {
  limiting : string;  (** "min" or "mid" *)
  time_change_pct : float;  (** ACO time vs limiting off (negative = faster) *)
  quality_change_pct : float;
      (** total emitted schedule length vs limiting off (negative = better) *)
}

val ready_limit_experiment :
  Compile.config -> Compile.suite_report -> ready_limit_row list
(** Section V-B's negative result, reproduced: unifying per-lane
    ready-list sizes within a wavefront saves some divergence time but
    defers good candidates, and does not give better overall results.
    Runs the pass-1-eligible regions under [`Min] and [`Mid] limiting
    against the [`Off] baseline. *)

type objective_row = {
  objective : string;  (** "two-pass" or "weighted-sum" *)
  kernels_at_better_occupancy : int;
      (** kernels where this formulation reaches strictly higher final
          occupancy than the other *)
  total_occupancy : int;
  total_length : int;
}

val objective_comparison : Compile.config -> Compile.suite_report -> objective_row list
(** Section II-A's design choice, measured: run the two-pass search
    ({!Aco.Seq_aco}) and the weighted-sum single-pass search
    ({!Aco.Weighted_aco}) on the ACO-eligible hot regions and compare
    final occupancy and length. The paper adopted two-pass because it
    "was found to work better on the GPU" — the two-pass row should win
    the occupancy column. *)
