let better (ca, ia) (cb, ib) = if ca < cb || (ca = cb && ia < ib) then (ca, ia) else (cb, ib)

let min_reduce costs =
  let n = Array.length costs in
  if n = 0 then invalid_arg "Reduction.min_reduce: empty";
  (* Tree rounds with halving stride, as in the shared-memory pattern. *)
  let buf = Array.copy costs in
  let active = ref n in
  while !active > 1 do
    let half = (!active + 1) / 2 in
    for i = 0 to !active - half - 1 do
      buf.(i) <- better buf.(i) buf.(i + half)
    done;
    active := half
  done;
  buf.(0)

let min_reduce_into ~costs ~scratch_cost ~scratch_idx =
  let n = Array.length costs in
  if n = 0 then invalid_arg "Reduction.min_reduce_into: empty";
  if Array.length scratch_cost < n || Array.length scratch_idx < n then
    invalid_arg "Reduction.min_reduce_into: scratch too small";
  Array.blit costs 0 scratch_cost 0 n;
  for i = 0 to n - 1 do
    scratch_idx.(i) <- i
  done;
  let active = ref n in
  while !active > 1 do
    let half = (!active + 1) / 2 in
    for i = 0 to !active - half - 1 do
      let ca = scratch_cost.(i) and cb = scratch_cost.(i + half) in
      if not (ca < cb || (ca = cb && scratch_idx.(i) < scratch_idx.(i + half))) then begin
        scratch_cost.(i) <- cb;
        scratch_idx.(i) <- scratch_idx.(i + half)
      end
    done;
    active := half
  done;
  (scratch_cost.(0), scratch_idx.(0))

let cost_ops ~threads =
  let rec rounds n acc = if n <= 1 then acc else rounds ((n + 1) / 2) (acc + n) in
  rounds threads 0 + 8
