let shapes_with_params rng =
  [
    ("reduction", Workload.Shapes.reduction rng ~items:16);
    ("scan", Workload.Shapes.scan rng ~items:16);
    ("transform", Workload.Shapes.transform rng ~unroll:8 ~chain:3);
    ("stencil", Workload.Shapes.stencil rng ~outputs:8 ~radius:2);
    ("matmul", Workload.Shapes.matmul_tile rng ~m:6 ~k:3);
    ("histogram", Workload.Shapes.histogram rng ~items:8);
    ("sort", Workload.Shapes.sort_pass rng ~items:8);
    ("scalar", Workload.Shapes.scalar_setup rng ~count:6);
    ("gather", Workload.Shapes.gather_compute rng ~lanes:6 ~chain:2);
    ("wide_accum", Workload.Shapes.wide_accum rng ~accumulators:8 ~rounds:12);
  ]

let test_shapes_build_valid_regions () =
  let rng = Support.Rng.create 1 in
  List.iter
    (fun (name, region) ->
      Alcotest.(check bool) (name ^ " non-empty") true (Ir.Region.size region > 0);
      (* the DDG builds and is schedulable *)
      let g = Ddg.Graph.build region in
      let s = Sched.List_scheduler.run g Sched.Heuristic.Critical_path in
      Alcotest.(check bool) (name ^ " schedulable") true (Tu.check_valid ~latency_aware:true s))
    (shapes_with_params rng)

let test_shapes_deterministic () =
  let r1 = Workload.Shapes.transform (Support.Rng.create 42) ~unroll:8 ~chain:3 in
  let r2 = Workload.Shapes.transform (Support.Rng.create 42) ~unroll:8 ~chain:3 in
  Alcotest.(check string) "same region from same seed" (Ir.Region.to_string r1)
    (Ir.Region.to_string r2)

let test_shapes_scale_with_params () =
  let rng () = Support.Rng.create 7 in
  Alcotest.(check bool) "reduction grows" true
    (Ir.Region.size (Workload.Shapes.reduction (rng ()) ~items:32)
    > Ir.Region.size (Workload.Shapes.reduction (rng ()) ~items:8));
  Alcotest.(check bool) "matmul grows with m" true
    (Ir.Region.size (Workload.Shapes.matmul_tile (rng ()) ~m:12 ~k:3)
    > Ir.Region.size (Workload.Shapes.matmul_tile (rng ()) ~m:4 ~k:3))

let test_wide_accum_pressure_floor () =
  (* All accumulators stay live through the rounds: the VGPR peak of any
     schedule is at least the accumulator count. *)
  let g =
    Ddg.Graph.build (Workload.Shapes.wide_accum (Support.Rng.create 4) ~accumulators:12 ~rounds:16)
  in
  List.iter
    (fun h ->
      let s = Sched.List_scheduler.run g h in
      Alcotest.(check bool)
        (Sched.Heuristic.to_string h ^ " respects the floor")
        true
        (Sched.Rp_tracker.naive_peaks g (Sched.Schedule.order s) Ir.Reg.Vgpr >= 12))
    Sched.Heuristic.all

let test_gather_has_pass2_gap () =
  (* The shape exists to create small regions with a meaningful gap
     between their input schedule and the length lower bound. *)
  let region = Workload.Shapes.gather_compute (Support.Rng.create 9) ~lanes:10 ~chain:2 in
  let g = Ddg.Graph.build region in
  let setup = Aco.Setup.prepare Tu.occ g in
  let init = Aco.Setup.pass2_initial setup ~best_pass1_order:setup.Aco.Setup.pass1_initial_order in
  Alcotest.(check bool) "region is small" true (Ir.Region.size region < 50);
  Alcotest.(check bool) "gap exceeds the tuned threshold" true
    (Sched.Schedule.length init - setup.Aco.Setup.length_lb
    >= Pipeline.Filters.default.Pipeline.Filters.cycle_threshold)

let test_stencil_is_pressure_trap () =
  (* The property the generator exists for: the CP schedule has markedly
     higher VGPR pressure than the LUC schedule. *)
  let g = Ddg.Graph.build (Workload.Shapes.stencil (Support.Rng.create 3) ~outputs:16 ~radius:4) in
  let peak h =
    let s = Sched.List_scheduler.run g h in
    Sched.Rp_tracker.naive_peaks g (Sched.Schedule.order s) Ir.Reg.Vgpr
  in
  Alcotest.(check bool) "breadth-first blows pressure" true
    (peak Sched.Heuristic.Critical_path > peak Sched.Heuristic.Last_use_count)

let test_suite_generation () =
  let s = Workload.Suite.generate Workload.Suite.test_scale in
  let stats = Workload.Suite.stats s in
  Alcotest.(check int) "kernel count" Workload.Suite.test_scale.Workload.Suite.num_kernels
    stats.Workload.Suite.num_kernels;
  Alcotest.(check int) "benchmarks = kernels + extras"
    (Workload.Suite.test_scale.Workload.Suite.num_kernels
    + Workload.Suite.test_scale.Workload.Suite.extra_benchmarks)
    stats.Workload.Suite.num_benchmarks;
  Alcotest.(check bool) "regions exist" true (stats.Workload.Suite.num_regions > 0);
  Alcotest.(check bool) "avg below max" true
    (stats.Workload.Suite.avg_region_size <= float_of_int stats.Workload.Suite.max_region_size)

let test_suite_deterministic () =
  let s1 = Workload.Suite.generate Workload.Suite.test_scale in
  let s2 = Workload.Suite.generate Workload.Suite.test_scale in
  List.iter2
    (fun (k1 : Workload.Suite.kernel) (k2 : Workload.Suite.kernel) ->
      Alcotest.(check string) "kernel names" k1.Workload.Suite.kernel_name
        k2.Workload.Suite.kernel_name;
      List.iter2
        (fun r1 r2 ->
          Alcotest.(check string) "region text" (Ir.Region.to_string r1) (Ir.Region.to_string r2))
        k1.Workload.Suite.regions k2.Workload.Suite.regions)
    s1.Workload.Suite.kernels s2.Workload.Suite.kernels

let test_suite_benchmarks_reference_kernels () =
  let s = Workload.Suite.generate Workload.Suite.test_scale in
  List.iter
    (fun (b : Workload.Suite.benchmark) ->
      Alcotest.(check bool) "kernel in pool" true
        (List.exists
           (fun (k : Workload.Suite.kernel) ->
             String.equal k.Workload.Suite.kernel_name
               b.Workload.Suite.kernel.Workload.Suite.kernel_name)
           s.Workload.Suite.kernels);
      Alcotest.(check bool) "positive items" true (b.Workload.Suite.items > 0);
      Alcotest.(check bool) "mem ratio in range" true
        (b.Workload.Suite.kernel.Workload.Suite.mem_ratio >= 0.0
        && b.Workload.Suite.kernel.Workload.Suite.mem_ratio <= 1.0))
    s.Workload.Suite.benchmarks

let test_giant_region_included () =
  let scale = { Workload.Suite.test_scale with Workload.Suite.include_giant = true } in
  let s = Workload.Suite.generate scale in
  let stats = Workload.Suite.stats s in
  Alcotest.(check bool) "giant region present" true (stats.Workload.Suite.max_region_size > 300)

let test_hot_region_is_first () =
  let s = Workload.Suite.generate Workload.Suite.test_scale in
  List.iter
    (fun (k : Workload.Suite.kernel) ->
      Alcotest.(check bool) "hot index in range" true
        (k.Workload.Suite.hot_index >= 0
        && k.Workload.Suite.hot_index < List.length k.Workload.Suite.regions);
      let hot = List.nth k.Workload.Suite.regions k.Workload.Suite.hot_index in
      Alcotest.(check bool) "hot region non-trivial" true (Ir.Region.size hot > 3))
    s.Workload.Suite.kernels

let suite =
  [
    Alcotest.test_case "shapes build valid regions" `Quick test_shapes_build_valid_regions;
    Alcotest.test_case "shapes deterministic" `Quick test_shapes_deterministic;
    Alcotest.test_case "shapes scale" `Quick test_shapes_scale_with_params;
    Alcotest.test_case "stencil pressure trap" `Quick test_stencil_is_pressure_trap;
    Alcotest.test_case "wide-accum pressure floor" `Quick test_wide_accum_pressure_floor;
    Alcotest.test_case "gather pass-2 gap" `Quick test_gather_has_pass2_gap;
    Alcotest.test_case "suite generation" `Quick test_suite_generation;
    Alcotest.test_case "suite deterministic" `Quick test_suite_deterministic;
    Alcotest.test_case "benchmarks reference kernels" `Quick test_suite_benchmarks_reference_kernels;
    Alcotest.test_case "giant region" `Quick test_giant_region_included;
    Alcotest.test_case "hot region largest" `Quick test_hot_region_is_first;
  ]
