(** Parallel reduction used to pick the iteration winner (Section IV-B).

    The kernel's second stage finds the best schedule of the iteration
    with a tree reduction over per-thread costs. This module performs the
    reduction exactly as the tree would (so the test suite checks it
    against a sequential fold) and reports its cost in simulated
    operations: [log2] rounds over the thread block values, charged to
    the efficient shared-memory pattern of Harris (reference [62]). *)

val min_reduce : (int * int) array -> int * int
(** [min_reduce costs] returns the minimum [(cost, index)] pair (ties to
    the lower index), computed by pairwise tree rounds. Raises
    [Invalid_argument] on an empty array. *)

val min_reduce_into :
  costs:int array -> scratch_cost:int array -> scratch_idx:int array -> int * int
(** {!min_reduce} over [costs.(i)] paired with index [i], using
    caller-owned scratch (each at least as long as [costs]) so the per
    iteration reduction allocates only the result pair. Identical tree
    shape and tie-breaking to [min_reduce (Array.mapi (fun i c -> (c, i))
    costs)]. *)

val cost_ops : threads:int -> int
(** Simulated per-launch cost: ceil(log2 threads) rounds, one comparison
    per active lane, lanes halving each round — about [2 * threads]
    comparisons plus a round constant. *)
