(** The two-pass orchestrator of Section IV-A, written once for every
    backend: pass 1 searches for a minimum-RP order (skipped when the
    initial order is already at the RP bound or the backend lacks an RP
    pass), its winner becomes pass 2's RP target and — latency-padded —
    pass 2's initial schedule, and pass 2 searches for the shortest
    latency-feasible schedule on whatever budget pass 1 left. *)

val run : Backend.t -> Backend.ctx -> Region_ctx.t -> Types.result
(** Prepare the backend from the shared region-analysis context, run the
    gated passes, tear it down (also on exceptions). Deterministic for a
    fixed context. *)
