let mk_event op ~scanned ~succs =
  { Aco.Ant.op; ready_scanned = scanned; succs_updated = succs }

let sel ~explored = Aco.Ant.Selected { instr = 0; explored }

let test_divergence_single_path () =
  let events =
    [ mk_event (sel ~explored:false) ~scanned:5 ~succs:2;
      mk_event (sel ~explored:false) ~scanned:3 ~succs:1 ]
  in
  let c = Gpusim.Divergence.step_charge events in
  Alcotest.(check int) "one path" 1 c.Gpusim.Divergence.distinct_paths;
  Alcotest.(check int) "cost = max lane" 10 c.Gpusim.Divergence.serialized_ops;
  Alcotest.(check int) "floor = same" 10 c.Gpusim.Divergence.max_single_path_ops

let test_divergence_two_paths () =
  let events =
    [ mk_event (sel ~explored:false) ~scanned:5 ~succs:2;
      mk_event (sel ~explored:true) ~scanned:3 ~succs:1;
      mk_event Aco.Ant.Mandatory_stall ~scanned:0 ~succs:0 ]
  in
  let c = Gpusim.Divergence.step_charge events in
  Alcotest.(check int) "three paths" 3 c.Gpusim.Divergence.distinct_paths;
  (* 10 + 7 + 3 *)
  Alcotest.(check int) "serialized sums maxima" 20 c.Gpusim.Divergence.serialized_ops;
  Alcotest.(check int) "floor is overall max" 10 c.Gpusim.Divergence.max_single_path_ops

let test_divergence_empty () =
  let c = Gpusim.Divergence.step_charge [] in
  Alcotest.(check int) "zero" 0 c.Gpusim.Divergence.serialized_ops

let prop_divergence_dominates =
  QCheck.Test.make ~name:"serialized >= single-path floor" ~count:200
    QCheck.(small_list (pair (int_bound 4) (pair (int_bound 30) (int_bound 10))))
    (fun raw ->
      let ops =
        [| sel ~explored:false; sel ~explored:true; Aco.Ant.Mandatory_stall;
           Aco.Ant.Optional_stall; Aco.Ant.Died |]
      in
      let events =
        List.map (fun (k, (scanned, succs)) -> mk_event ops.(k) ~scanned ~succs) raw
      in
      let c = Gpusim.Divergence.step_charge events in
      c.Gpusim.Divergence.serialized_ops >= c.Gpusim.Divergence.max_single_path_ops)

let test_mem_coalescing () =
  let coalesced = Tu.test_gpu in
  let uncoalesced =
    Gpusim.Config.with_opts Tu.test_gpu Gpusim.Config.opts_no_memory
  in
  let reads = [ 4; 7; 2; 7 ] in
  Alcotest.(check int) "coalesced = max" 7
    (Gpusim.Mem_model.step_transactions coalesced ~reads_per_lane:reads);
  Alcotest.(check int) "uncoalesced = sum" 20
    (Gpusim.Mem_model.step_transactions uncoalesced ~reads_per_lane:reads);
  Alcotest.(check int) "empty wavefront" 0
    (Gpusim.Mem_model.step_transactions coalesced ~reads_per_lane:[])

let prop_coalescing_never_worse =
  QCheck.Test.make ~name:"coalesced transactions <= uncoalesced" ~count:200
    QCheck.(small_list (int_bound 50))
    (fun reads ->
      let c = Gpusim.Mem_model.step_transactions Tu.test_gpu ~reads_per_lane:reads in
      let u =
        Gpusim.Mem_model.step_transactions
          (Gpusim.Config.with_opts Tu.test_gpu Gpusim.Config.opts_no_memory)
          ~reads_per_lane:reads
      in
      c <= u)

let test_mem_sizing () =
  let tight = Gpusim.Mem_model.words_per_thread Tu.test_gpu ~n:100 ~ready_ub:10 in
  let loose =
    Gpusim.Mem_model.words_per_thread
      (Gpusim.Config.with_opts Tu.test_gpu Gpusim.Config.opts_no_memory)
      ~n:100 ~ready_ub:10
  in
  Alcotest.(check bool) "tight bound shrinks arrays" true (tight < loose);
  let batched = Gpusim.Mem_model.setup_time_ns Tu.test_gpu ~n:100 ~ready_ub:10 in
  let unbatched =
    Gpusim.Mem_model.setup_time_ns
      (Gpusim.Config.with_opts Tu.test_gpu Gpusim.Config.opts_no_memory)
      ~n:100 ~ready_ub:10
  in
  Alcotest.(check bool) "batched setup cheaper" true (batched < unbatched)

let test_reduction_matches_fold () =
  let a = [| (5, 0); (3, 1); (9, 2); (3, 3) |] in
  Alcotest.(check (pair int int)) "min with lowest index on ties" (3, 1)
    (Gpusim.Reduction.min_reduce a)

let prop_reduction_correct =
  QCheck.Test.make ~name:"tree reduction = sequential min" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 100) int)
    (fun xs ->
      let a = Array.of_list (List.mapi (fun i x -> (x, i)) xs) in
      let tree = Gpusim.Reduction.min_reduce a in
      let seq =
        Array.fold_left
          (fun (bc, bi) (c, i) -> if c < bc || (c = bc && i < bi) then (c, i) else (bc, bi))
          a.(0) a
      in
      tree = seq)

let test_reduction_empty () =
  Alcotest.check_raises "empty reduction" (Invalid_argument "Reduction.min_reduce: empty")
    (fun () -> ignore (Gpusim.Reduction.min_reduce [||]))

let test_kernel_sim_construction_time () =
  let config = Tu.test_gpu in
  (* Fewer wavefronts than SIMDs: wall = max. *)
  Alcotest.(check (float 1e-9)) "max rule" 7.0
    (Gpusim.Kernel_sim.construction_time_ns config ~wavefront_times:[| 3.0; 7.0 |]);
  (* More wavefronts than SIMDs: same SIMD accumulates. *)
  let simds = Machine.Target.total_simds config.Gpusim.Config.target in
  let times = Array.make (simds + 1) 1.0 in
  Alcotest.(check (float 1e-9)) "round-robin accumulation" 2.0
    (Gpusim.Kernel_sim.construction_time_ns config ~wavefront_times:times)

let test_kernel_sim_pass_time_includes_overheads () =
  let config = Tu.test_gpu in
  let t = Gpusim.Kernel_sim.pass_time_ns config ~n:50 ~ready_ub:10 ~iteration_times:[ 1000.0 ] in
  Alcotest.(check bool) "launch overhead dominates small kernels" true
    (t > config.Gpusim.Config.launch_overhead_ns)

let run_wavefront ?(opts = Gpusim.Config.opts_paper) mode g =
  let config = Gpusim.Config.with_opts Tu.test_gpu opts in
  let w =
    Gpusim.Wavefront.create config g Tu.test_params ~heuristic:Sched.Heuristic.Critical_path
      ~allow_optional_stalls:true
  in
  let pheromone = Aco.Pheromone.create ~n:g.Ddg.Graph.n ~initial:1.0 in
  Gpusim.Wavefront.run_iteration w ~rng:(Support.Rng.create 3) ~mode ~pheromone

let test_wavefront_pass1_all_finish () =
  let g = Ddg.Graph.build (Tu.random_region 9) in
  let o = run_wavefront Aco.Ant.Rp_pass g in
  Alcotest.(check int) "all lanes finish in pass 1" 64
    (List.length o.Gpusim.Wavefront.finished);
  Alcotest.(check int) "pass-1 lockstep steps = n" g.Ddg.Graph.n o.Gpusim.Wavefront.steps;
  Alcotest.(check bool) "time positive" true (o.Gpusim.Wavefront.time_ns > 0.0);
  Alcotest.(check bool) "divergence floor" true
    (o.Gpusim.Wavefront.serialized_ops >= o.Gpusim.Wavefront.single_path_ops);
  List.iter
    (fun ant ->
      match Aco.Ant.schedule ant with
      | Some s ->
          Alcotest.(check bool) "lane schedule valid" true
            (Result.is_ok (Sched.Schedule.validate s ~latency_aware:false))
      | None -> Alcotest.fail "finished lane without schedule")
    o.Gpusim.Wavefront.finished

let test_wavefront_early_termination () =
  let g = Ddg.Graph.build (Tu.random_region 21) in
  let on = run_wavefront ~opts:Gpusim.Config.opts_paper (Aco.Ant.Ilp_pass { target_vgpr = 1000; target_sgpr = 1000 }) g in
  let off =
    run_wavefront ~opts:Gpusim.Config.opts_no_divergence
      (Aco.Ant.Ilp_pass { target_vgpr = 1000; target_sgpr = 1000 })
      g
  in
  Alcotest.(check bool) "early termination keeps only first finishers" true
    (List.length on.Gpusim.Wavefront.finished <= List.length off.Gpusim.Wavefront.finished);
  Alcotest.(check bool) "some lane finishes either way" true
    (on.Gpusim.Wavefront.finished <> [] && off.Gpusim.Wavefront.finished <> [])

let par_run ?(config = Tu.test_gpu) seed g =
  let params =
    { Tu.test_params with Aco.Params.ants_per_iteration = Gpusim.Config.threads config }
  in
  Gpusim.Par_aco.run ~params ~seed config Tu.occ g

let prop_par_aco_valid =
  QCheck.Test.make ~name:"parallel ACO emits valid schedules" ~count:15
    (Tu.arb_graph ~max_size:20 ()) (fun g ->
      let r = par_run 7 g in
      Result.is_ok (Sched.Schedule.validate r.Gpusim.Par_aco.schedule ~latency_aware:true))

let prop_par_aco_never_worse_rp =
  QCheck.Test.make ~name:"parallel ACO RP never worse than heuristic" ~count:15
    (Tu.arb_graph ~max_size:20 ()) (fun g ->
      let r = par_run 8 g in
      Sched.Cost.compare_rp r.Gpusim.Par_aco.cost.Sched.Cost.rp
        r.Gpusim.Par_aco.heuristic_cost.Sched.Cost.rp
      <= 0)

let test_par_aco_times_positive () =
  let g = Ddg.Graph.build (Workload.Shapes.transform (Support.Rng.create 2) ~unroll:8 ~chain:3) in
  let r = par_run 9 g in
  if r.Gpusim.Par_aco.pass2.Gpusim.Par_aco.invoked then begin
    Alcotest.(check bool) "gpu time positive" true
      (r.Gpusim.Par_aco.pass2.Gpusim.Par_aco.time_ns > 0.0);
    Alcotest.(check bool) "work positive" true (r.Gpusim.Par_aco.pass2.Gpusim.Par_aco.work > 0)
  end;
  Alcotest.(check bool) "total time includes overhead when invoked" true
    (Gpusim.Par_aco.total_time_ns r >= 0.0)

let test_par_aco_deterministic () =
  let g = Ddg.Graph.build (Tu.random_region 31) in
  let r1 = par_run 11 g and r2 = par_run 11 g in
  Alcotest.(check int) "same length" r1.Gpusim.Par_aco.cost.Sched.Cost.length
    r2.Gpusim.Par_aco.cost.Sched.Cost.length;
  Alcotest.(check (float 1e-6)) "same simulated time"
    (Gpusim.Par_aco.total_time_ns r1) (Gpusim.Par_aco.total_time_ns r2)

let test_memory_opts_speed_up () =
  let g = Ddg.Graph.build (Workload.Shapes.transform (Support.Rng.create 4) ~unroll:10 ~chain:4) in
  let fast = par_run ~config:Tu.test_gpu 13 g in
  let slow =
    par_run ~config:(Gpusim.Config.with_opts Tu.test_gpu Gpusim.Config.opts_no_memory) 13 g
  in
  Alcotest.(check bool) "coalesced build is faster" true
    (Gpusim.Par_aco.total_time_ns fast < Gpusim.Par_aco.total_time_ns slow)

let test_cpu_model () =
  let t = Gpusim.Cpu_model.pass_time_ns Tu.test_gpu ~work:1000 in
  Alcotest.(check (float 1e-9)) "work x ns/op"
    (1000.0 *. Tu.test_gpu.Gpusim.Config.cpu_ns_per_op) t;
  Alcotest.(check (float 1e-12)) "seconds" 1e-3 (Gpusim.Cpu_model.seconds 1e6)

let test_config_threads () =
  Alcotest.(check int) "threads = wavefronts x 64" (2 * 64) (Gpusim.Config.threads Tu.test_gpu);
  Alcotest.(check int) "paper geometry" (180 * 64) (Gpusim.Config.threads Gpusim.Config.default)

let suite =
  [
    Alcotest.test_case "divergence single path" `Quick test_divergence_single_path;
    Alcotest.test_case "divergence two paths" `Quick test_divergence_two_paths;
    Alcotest.test_case "divergence empty" `Quick test_divergence_empty;
    Alcotest.test_case "memory coalescing rule" `Quick test_mem_coalescing;
    Alcotest.test_case "memory sizing" `Quick test_mem_sizing;
    Alcotest.test_case "reduction matches fold" `Quick test_reduction_matches_fold;
    Alcotest.test_case "reduction empty" `Quick test_reduction_empty;
    Alcotest.test_case "kernel construction time" `Quick test_kernel_sim_construction_time;
    Alcotest.test_case "kernel pass overheads" `Quick test_kernel_sim_pass_time_includes_overheads;
    Alcotest.test_case "wavefront pass-1 lockstep" `Quick test_wavefront_pass1_all_finish;
    Alcotest.test_case "wavefront early termination" `Quick test_wavefront_early_termination;
    Alcotest.test_case "par aco times" `Quick test_par_aco_times_positive;
    Alcotest.test_case "par aco deterministic" `Quick test_par_aco_deterministic;
    Alcotest.test_case "memory opts speed up" `Quick test_memory_opts_speed_up;
    Alcotest.test_case "cpu model" `Quick test_cpu_model;
    Alcotest.test_case "config threads" `Quick test_config_threads;
  ]
  @ Tu.qtests
      [
        prop_divergence_dominates;
        prop_coalescing_never_worse;
        prop_reduction_correct;
        prop_par_aco_valid;
        prop_par_aco_never_worse_rp;
      ]
