let better (ca, ia) (cb, ib) = if ca < cb || (ca = cb && ia < ib) then (ca, ia) else (cb, ib)

let min_reduce costs =
  let n = Array.length costs in
  if n = 0 then invalid_arg "Reduction.min_reduce: empty";
  (* Tree rounds with halving stride, as in the shared-memory pattern. *)
  let buf = Array.copy costs in
  let active = ref n in
  while !active > 1 do
    let half = (!active + 1) / 2 in
    for i = 0 to !active - half - 1 do
      buf.(i) <- better buf.(i) buf.(i + half)
    done;
    active := half
  done;
  buf.(0)

let cost_ops ~threads =
  let rec rounds n acc = if n <= 1 then acc else rounds ((n + 1) / 2) (acc + n) in
  rounds threads 0 + 8
