let () =
  Alcotest.run "gpu-aco-sched"
    [
      ("support", Test_support.suite);
      ("ir", Test_ir.suite);
      ("ddg", Test_ddg.suite);
      ("machine", Test_machine.suite);
      ("sched", Test_sched.suite);
      ("aco", Test_aco.suite);
      ("gpusim", Test_gpusim.suite);
      ("engine", Test_engine.suite);
      ("policy", Test_policy.suite);
      ("arena", Test_arena.suite);
      ("workload", Test_workload.suite);
      ("pipeline", Test_pipeline.suite);
      ("exec", Test_exec.suite);
      ("robust", Test_robust.suite);
      ("serve", Test_serve.suite);
      ("quality", Test_quality.suite);
      ("obs", Test_obs.suite);
    ]
