let frontend_ns_per_benchmark = 0.14e9
let codegen_ns_per_instr = 8_000.0

let heuristic_schedule_ns ~n = float_of_int n *. 2_500.0

type totals = { base_ns : float; seq_ns : float; par_ns : float }

let region_base_ns (r : Compile.region_report) =
  (float_of_int r.Compile.n *. codegen_ns_per_instr) +. heuristic_schedule_ns ~n:r.Compile.n

let region_aco_ns ~threshold ~pass1 ~pass2 (r : Compile.region_report) =
  if r.Compile.pass2_gap < threshold then 0.0
  else
    (if r.Compile.pass1_invoked then pass1 else 0.0)
    +. (if r.Compile.pass2_invoked then pass2 else 0.0)

let compile_totals ~threshold (report : Compile.suite_report) =
  let by_name = Hashtbl.create 64 in
  List.iter
    (fun (kr : Compile.kernel_report) ->
      Hashtbl.replace by_name kr.Compile.kernel.Workload.Suite.kernel_name kr)
    report.Compile.kernels;
  let base = ref 0.0 and seq = ref 0.0 and par = ref 0.0 in
  List.iter
    (fun (b : Workload.Suite.benchmark) ->
      base := !base +. frontend_ns_per_benchmark;
      match Hashtbl.find_opt by_name b.Workload.Suite.kernel.Workload.Suite.kernel_name with
      | None -> ()
      | Some kr ->
          List.iter
            (fun (r : Compile.region_report) ->
              base := !base +. region_base_ns r;
              seq :=
                !seq
                +. region_aco_ns ~threshold ~pass1:(Compile.seq_pass1_time_ns r)
                     ~pass2:(Compile.seq_pass2_time_ns r) r;
              par :=
                !par
                +. region_aco_ns ~threshold ~pass1:(Compile.par_pass1_time_ns r)
                     ~pass2:(Compile.par_pass2_time_ns r) r)
            kr.Compile.regions)
    report.Compile.suite.Workload.Suite.benchmarks;
  { base_ns = !base; seq_ns = !base +. !seq; par_ns = !base +. !par }

let pct_increase base x = (x -. base) /. base *. 100.0
