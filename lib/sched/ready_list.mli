(** The ready list of cycle-driven schedule construction.

    An instruction is *ready* when all its predecessors are scheduled and
    their latencies have elapsed at the current cycle; it is *semi-ready*
    when its predecessors are scheduled but some latency has not yet
    elapsed (Section IV-C — semi-ready instructions drive the
    optional-stall heuristic). With [latency_aware:false] (pass 1)
    latencies are ignored and instructions become ready as soon as their
    predecessors are scheduled. *)

type t

val create : ?latency_aware:bool -> Ddg.Graph.t -> t
(** [latency_aware] defaults to [true]. Stand-alone list with a private
    backing buffer. *)

val int_demand : Ddg.Graph.t -> int
(** Arena ints one list needs (for exact pre-sizing): 7 segments of [n]
    entries. *)

val create_in : ?latency_aware:bool -> Support.Arena.t -> Ddg.Graph.t -> t
(** As {!create} but with all state carved out of the given arena — the
    batched SoA colony allocation of Section V-A. *)

val reset : t -> unit

val current_cycle : t -> int

val ready_count : t -> int

val ready : t -> int -> int
(** [ready t k] is the [k]-th ready instruction, [0 <= k < ready_count].
    Order is unspecified but deterministic. *)

val blit_ready : t -> int array -> int -> unit
(** [blit_ready t cand m] copies the first [m] ready instructions — in
    {!ready} order — into [cand.(0..m-1)] with a single blit: the
    candidate-list view the ant hot loop scores from. [m] must be at
    most [ready_count t] and [cand] at least [m] long (unchecked beyond
    the blit's own bounds). *)

val ready_list : t -> int list

val semi_ready : t -> (int * int) list
(** [(instr, cycle_when_ready)] for instructions waiting only on
    latency. *)

val min_semi_ready_cycle : t -> int option
(** Earliest cycle at which some semi-ready instruction becomes ready. *)

val has_semi_ready : t -> bool
(** [min_semi_ready_cycle t <> None] without the option allocation. *)

val schedule : t -> int -> unit
(** Issue the given ready instruction at the current cycle, then advance
    the cycle by one and promote newly ready instructions. Raises
    [Invalid_argument] if the instruction is not currently ready. *)

val stall : t -> unit
(** Advance one cycle without issuing. *)

val scheduled_count : t -> int
val finished : t -> bool
