(* The execute layer of the compile service: registry domain-safety, the
   content-addressed analysis cache, ride-along baseline sourcing, and
   the canonical-identity differentials — the suite report must be the
   same whether the cache is on or off and whether one domain or four
   compile it, fault injection and tight budgets included. *)

let params = Tu.test_params
let gpu = Tu.test_gpu

(* --- registry under concurrent registration ------------------------------ *)

let test_registry_domains () =
  (* Hammer the registry from several domains at once: registrations and
     [ensure_backends] racing must neither crash nor corrupt the order
     list (re-registration keeps the first position, every name resolves
     afterwards). *)
  let domains =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to 25 do
              Pipeline.Compile.ensure_backends ();
              ignore (Engine.Registry.find "par");
              ignore (Engine.Registry.names ());
              ignore (Engine.Registry.mem (if d mod 2 = 0 then "seq" else "weighted"))
            done))
  in
  Array.iter Domain.join domains;
  List.iter
    (fun b -> Alcotest.(check bool) (b ^ " registered") true (Engine.Registry.mem b))
    [ "seq"; "par"; "weighted" ];
  let names = Engine.Registry.names () in
  let sorted = List.sort_uniq String.compare names in
  Alcotest.(check int) "no duplicate registrations" (List.length sorted)
    (List.length names)

(* --- analysis cache ------------------------------------------------------ *)

(* Structurally equal region under fresh names: [random_region] is
   deterministic in the seed, so building it twice yields equal graphs
   whose instruction names differ only by builder counter state. *)
let test_cache_content_addressing () =
  let r1 = Tu.random_region ~max_size:25 11 in
  let r2 = Tu.random_region ~max_size:25 11 in
  let r3 = Tu.random_region ~max_size:25 12 in
  Alcotest.(check bool) "same structure, same fingerprint" true
    (Engine.Region_ctx.fingerprint_of_region r1
    = Engine.Region_ctx.fingerprint_of_region r2);
  Alcotest.(check bool) "different structure, different fingerprint" false
    (Engine.Region_ctx.fingerprint_of_region r1
    = Engine.Region_ctx.fingerprint_of_region r3);
  let cache = Pipeline.Analysis.create () in
  let c1 = Pipeline.Analysis.get cache Tu.occ r1 in
  let c2 = Pipeline.Analysis.get cache Tu.occ r2 in
  let _ = Pipeline.Analysis.get cache Tu.occ r3 in
  Alcotest.(check bool) "structural duplicate shares the context" true (c1 == c2);
  let s = Pipeline.Analysis.stats cache in
  Alcotest.(check int) "hits" 1 s.Pipeline.Analysis.hits;
  Alcotest.(check int) "misses" 2 s.Pipeline.Analysis.misses;
  Alcotest.(check int) "computed" 2 s.Pipeline.Analysis.computed;
  Alcotest.(check int) "entries" 2 s.Pipeline.Analysis.entries

let test_cache_lru_eviction () =
  let cache = Pipeline.Analysis.create ~capacity:2 () in
  let ra = Tu.random_region ~max_size:20 21 in
  let rb = Tu.random_region ~max_size:20 22 in
  let rc = Tu.random_region ~max_size:20 23 in
  ignore (Pipeline.Analysis.get cache Tu.occ ra);
  ignore (Pipeline.Analysis.get cache Tu.occ rb);
  (* touch [ra] so [rb] is the least recently used, then overflow *)
  ignore (Pipeline.Analysis.get cache Tu.occ ra);
  ignore (Pipeline.Analysis.get cache Tu.occ rc);
  let s = Pipeline.Analysis.stats cache in
  Alcotest.(check int) "one eviction" 1 s.Pipeline.Analysis.evictions;
  Alcotest.(check int) "bounded residency" 2 s.Pipeline.Analysis.entries;
  (* [ra] survived (recently used), [rb] was evicted and recomputes *)
  ignore (Pipeline.Analysis.get cache Tu.occ ra);
  Alcotest.(check int) "victim is the LRU entry"
    (s.Pipeline.Analysis.computed)
    (Pipeline.Analysis.stats cache).Pipeline.Analysis.computed;
  ignore (Pipeline.Analysis.get cache Tu.occ rb);
  Alcotest.(check int) "evicted entry recomputes"
    (s.Pipeline.Analysis.computed + 1)
    (Pipeline.Analysis.stats cache).Pipeline.Analysis.computed

let test_cache_disabled () =
  let cache = Pipeline.Analysis.disabled () in
  Alcotest.(check bool) "not caching" false (Pipeline.Analysis.caching cache);
  let r = Tu.random_region ~max_size:20 31 in
  ignore (Pipeline.Analysis.get cache Tu.occ r);
  ignore (Pipeline.Analysis.get cache Tu.occ r);
  let s = Pipeline.Analysis.stats cache in
  Alcotest.(check int) "no hits without storage" 0 s.Pipeline.Analysis.hits;
  Alcotest.(check int) "every lookup computes" 2 s.Pipeline.Analysis.computed;
  Alcotest.(check int) "nothing retained" 0 s.Pipeline.Analysis.entries

let test_cache_computes_once () =
  (* The once-per-distinct-region invariant, measured in closure
     computations: a duplicate-heavy suite compiled under a race dispatch
     plus the ride-along baseline (four analysis consumers per region)
     must run one closure analysis per distinct region. *)
  let suite =
    Workload.Suite.replicate ~copies:2
      (Workload.Suite.generate
         { Workload.Suite.test_scale with Workload.Suite.num_kernels = 2 })
  in
  let distinct =
    let seen = Hashtbl.create 32 in
    List.iter
      (fun r -> Hashtbl.replace seen (Engine.Region_ctx.fingerprint_of_region r) ())
      (Workload.Suite.all_regions suite);
    Hashtbl.length seen
  in
  let config =
    {
      (Pipeline.Compile.make_config ~gpu
         ~dispatch:(Engine.Dispatch.Race [ "par"; "weighted" ])
         ())
      with
      Pipeline.Compile.params;
      run_sequential = true;
    }
  in
  let cache = Pipeline.Analysis.create () in
  let c0 = Ddg.Closure.compute_count () in
  ignore (Pipeline.Executor.run_suite ~jobs:1 ~cache config suite);
  Alcotest.(check int) "one closure analysis per distinct region" distinct
    (Ddg.Closure.compute_count () - c0);
  let s = Pipeline.Analysis.stats cache in
  Alcotest.(check int) "one cache computation per distinct region" distinct
    s.Pipeline.Analysis.computed;
  Alcotest.(check bool) "duplicate suite hits at least half the lookups" true
    (Pipeline.Analysis.hit_rate s >= 0.5)

(* --- ride-along baseline sourcing ---------------------------------------- *)

let test_ride_along_shares_context () =
  let region = Tu.random_region ~max_size:30 41 in
  let config =
    { (Pipeline.Compile.make_config ~gpu ()) with Pipeline.Compile.params }
  in
  let rc = Engine.Region_ctx.of_region config.Pipeline.Compile.occ region in
  let r = Pipeline.Compile.run_region ~ctx:rc config ~name:"ride" region in
  (* the ride-along sequential run started from the shared context's
     heuristic schedule: its recorded heuristic cost is the context's *)
  (match Pipeline.Compile.find_run r "seq" with
  | None -> Alcotest.fail "run_sequential did not add a seq baseline run"
  | Some run ->
      Alcotest.(check bool) "baseline heuristic cost comes from the shared context"
        true
        (run.Pipeline.Compile.result.Engine.Types.heuristic_cost
        = rc.Engine.Region_ctx.setup.Aco.Setup.amd_cost));
  Alcotest.(check bool) "report heuristic cost comes from the shared context" true
    (r.Pipeline.Compile.heuristic_cost = rc.Engine.Region_ctx.setup.Aco.Setup.amd_cost);
  Alcotest.(check bool) "CP sensitivity cost comes from the shared context" true
    (r.Pipeline.Compile.cp_cost = rc.Engine.Region_ctx.cp_cost)

(* --- canonical identity of the multi-domain executor --------------------- *)

let small_suite seed =
  Workload.Suite.generate
    { Workload.Suite.test_scale with Workload.Suite.seed; num_kernels = 2 }

let digest_of ~jobs ~cache config suite =
  Pipeline.Report_digest.digest (Pipeline.Executor.run_suite ~jobs ?cache config suite)

let exec_identity =
  QCheck.Test.make ~count:3
    ~name:"suite report is canonically identical across cache and domain count"
    QCheck.small_int
    (fun seed ->
      let suite = small_suite seed in
      let config =
        { (Pipeline.Compile.make_config ~gpu ()) with Pipeline.Compile.params }
      in
      let reference = digest_of ~jobs:1 ~cache:None config suite in
      let sequential =
        Pipeline.Report_digest.digest (Pipeline.Compile.run_suite config suite)
      in
      Alcotest.(check string) "executor jobs=1 = sequential run_suite" sequential
        reference;
      Alcotest.(check string) "cache on = cache off" reference
        (digest_of ~jobs:1 ~cache:(Some (Pipeline.Analysis.create ())) config suite);
      Alcotest.(check string) "jobs=4 = jobs=1" reference
        (digest_of ~jobs:4 ~cache:(Some (Pipeline.Analysis.create ())) config suite);
      true)

let exec_identity_faulted =
  QCheck.Test.make ~count:2
    ~name:"canonical identity holds under injected faults and tight budgets"
    QCheck.small_int
    (fun seed ->
      let suite = small_suite (seed + 1000) in
      List.iter
        (fun (fault_rate, budget_ms) ->
          let config =
            {
              (Pipeline.Compile.make_config ~gpu ~fault_rate
                 ~fault_seed:(seed + 7) ~compile_budget_ms:budget_ms ())
              with
              Pipeline.Compile.params;
            }
          in
          let reference = digest_of ~jobs:1 ~cache:None config suite in
          Alcotest.(check string)
            (Printf.sprintf "rate=%.1f budget=%.3fms: jobs=4 = jobs=1" fault_rate
               budget_ms)
            reference
            (digest_of ~jobs:4 ~cache:(Some (Pipeline.Analysis.create ())) config suite);
          Alcotest.(check string)
            (Printf.sprintf "rate=%.1f budget=%.3fms: cache on = off" fault_rate
               budget_ms)
            reference
            (digest_of ~jobs:1 ~cache:(Some (Pipeline.Analysis.create ())) config suite))
        [ (0.5, 5.0); (0.9, 0.01) ];
      true)

let test_degradation_ledger_stable () =
  (* The degradation ledger (fault tallies and severities) is part of the
     digest, but assert it directly too: a faulted, tightly budgeted
     compile tallies identically whether one or four domains ran it. *)
  let suite = small_suite 77 in
  let config =
    {
      (Pipeline.Compile.make_config ~gpu ~fault_rate:0.7 ~fault_seed:3
         ~compile_budget_ms:0.05 ())
      with
      Pipeline.Compile.params;
    }
  in
  let tally report =
    Pipeline.Robust.tally_of_list
      (List.concat_map
         (fun (kr : Pipeline.Compile.kernel_report) ->
           List.map
             (fun (r : Pipeline.Compile.region_report) ->
               r.Pipeline.Compile.degradation)
             kr.Pipeline.Compile.regions)
         report.Pipeline.Compile.kernels)
  in
  let t1 = tally (Pipeline.Executor.run_suite ~jobs:1 config suite) in
  let t4 =
    tally
      (Pipeline.Executor.run_suite ~jobs:4
         ~cache:(Pipeline.Analysis.create ())
         config suite)
  in
  Alcotest.(check bool) "ledgers agree" true (t1 = t4)

let suite =
  [
    ("registry survives concurrent registration", `Quick, test_registry_domains);
    ("analysis cache is content-addressed", `Quick, test_cache_content_addressing);
    ("analysis cache evicts LRU at capacity", `Quick, test_cache_lru_eviction);
    ("capacity 0 meters without storing", `Quick, test_cache_disabled);
    ("analysis runs once per distinct region", `Quick, test_cache_computes_once);
    ("ride-along baseline shares the region context", `Quick,
     test_ride_along_shares_context);
    ("degradation ledger is domain-count independent", `Quick,
     test_degradation_ledger_stable);
  ]
  @ Tu.qtests [ exec_identity; exec_identity_faulted ]
