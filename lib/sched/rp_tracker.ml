(* The tracker is split into a shared immutable [layout] — the interned
   register universe and per-instruction Def/Use id arrays, identical for
   every ant scheduling the same region — and a small per-ant mutable
   state carved out of a caller-supplied arena (or a private backing
   array). A colony of 64 lanes therefore interns registers once and
   packs all 64 trackers' state into one allocation (Section V-A's
   batched SoA layout). *)

type layout = {
  graph : Ddg.Graph.t;
  cls : Ir.Reg.cls array;  (* dense id -> class *)
  (* per-instruction dense register ids, precomputed so the hot path never
     hashes *)
  use_ids : int array array;
  def_ids : int array array;
  (* per-instruction def counts by class: scheduling [i] can raise a
     class's pressure by at most this many opens, which gives the hot
     fits check a sound fast path that skips the per-register scan *)
  defs_v : int array;
  defs_s : int array;
  (* candidate-pruning tables (sound lower bounds; see
     [filter_fits_prefix]): [min_delta_*.(i)] bounds from below the
     current-pressure change of scheduling [i] at any point
     (single-definer non-live-in opens minus distinct non-live-out-use
     closes); [min_lb_*.(i)] is the static Chen-style bound from
     [Ddg.Lower_bounds.min_reg_lb] — zero when the layout was built
     without a closure, which only weakens pruning, never unsounds it. *)
  min_delta_v : int array;
  min_delta_s : int array;
  min_lb_v : int array;
  min_lb_s : int array;
  total_uses : int array;
  live_out : bool array;
  live_in : bool array;
  nregs : int;
}

type t = {
  layout : layout;
  buf : int array;
  rem_base : int;  (* remaining use counts, nregs entries *)
  live_base : int;  (* 0/1 liveness flags, nregs entries *)
  cur_base : int;  (* current pressure, 2 entries (class rank) *)
  peak_base : int;  (* peak pressure, 2 entries *)
  eff_base : int;  (* effects scratch, 4 entries (see [compute_effects]) *)
  (* Candidate pruning: off by default so the tracker is byte-identical
     to the historical one; a backend flips it on as a declared
     capability. The counters are cumulative across [reset]s (they meter
     work, not schedule state); drivers snapshot them around a pass. *)
  mutable prune : bool;
  mutable scored : int;
  mutable pruned : int;
}

let rank = function Ir.Reg.Vgpr -> 0 | Ir.Reg.Sgpr -> 1

let layout_of_graph ?closure (graph : Ddg.Graph.t) =
  let region = graph.region in
  let instrs = (region : Ir.Region.t).instrs in
  let index = Hashtbl.create 64 in
  let next = ref 0 in
  let intern r =
    match Hashtbl.find_opt index r with
    | Some i -> i
    | None ->
        let i = !next in
        Hashtbl.add index r i;
        incr next;
        i
  in
  let use_ids =
    Array.map (fun (ins : Ir.Instr.t) -> Array.of_list (List.map intern ins.uses)) instrs
  in
  let def_ids =
    Array.map (fun (ins : Ir.Instr.t) -> Array.of_list (List.map intern ins.defs)) instrs
  in
  List.iter (fun r -> ignore (intern r)) (region : Ir.Region.t).live_out;
  List.iter (fun r -> ignore (intern r)) (Ir.Region.live_in region);
  let nregs = max !next 1 in
  let cls = Array.make nregs Ir.Reg.Vgpr in
  Hashtbl.iter (fun (r : Ir.Reg.t) i -> cls.(i) <- r.cls) index;
  let total_uses = Array.make nregs 0 in
  Array.iter (Array.iter (fun i -> total_uses.(i) <- total_uses.(i) + 1)) use_ids;
  let live_out = Array.make nregs false in
  List.iter (fun r -> live_out.(Hashtbl.find index r) <- true) (region : Ir.Region.t).live_out;
  let live_in = Array.make nregs false in
  List.iter (fun r -> live_in.(Hashtbl.find index r) <- true) (Ir.Region.live_in region);
  let n = Array.length def_ids in
  let defs_v = Array.make n 0 and defs_s = Array.make n 0 in
  for i = 0 to n - 1 do
    Array.iter
      (fun di ->
        match cls.(di) with
        | Ir.Reg.Vgpr -> defs_v.(i) <- defs_v.(i) + 1
        | Ir.Reg.Sgpr -> defs_s.(i) <- defs_s.(i) + 1)
      def_ids.(i)
  done;
  (* Pruning tables. [min_delta]: a def that is not live-in and has a
     single definer can never be live before its definer issues, so it
     opens unconditionally; a use can close at most once, and only if it
     is not live-out. Hence (certain opens - potential closes) lower
     bounds the current-pressure delta of [compute_effects] in any
     tracker state, and [cur + min_delta > target] implies the candidate
     cannot pass [fits_within]. *)
  let def_count = Array.make nregs 0 in
  Array.iter (Array.iter (fun di -> def_count.(di) <- def_count.(di) + 1)) def_ids;
  let min_delta_v = Array.make n 0 and min_delta_s = Array.make n 0 in
  for i = 0 to n - 1 do
    let opens_v = ref 0 and opens_s = ref 0 in
    Array.iter
      (fun di ->
        if (not live_in.(di)) && def_count.(di) = 1 then
          match cls.(di) with
          | Ir.Reg.Vgpr -> incr opens_v
          | Ir.Reg.Sgpr -> incr opens_s)
      def_ids.(i);
    let closes_v = ref 0 and closes_s = ref 0 in
    let uses = use_ids.(i) in
    for k = 0 to Array.length uses - 1 do
      let ui = uses.(k) in
      (* distinct uses only: count the first occurrence *)
      let first = ref true in
      for j = 0 to k - 1 do
        if uses.(j) = ui then first := false
      done;
      if !first && not live_out.(ui) then
        match cls.(ui) with
        | Ir.Reg.Vgpr -> incr closes_v
        | Ir.Reg.Sgpr -> incr closes_s
    done;
    min_delta_v.(i) <- !opens_v - !closes_v;
    min_delta_s.(i) <- !opens_s - !closes_s
  done;
  let min_lb_v, min_lb_s =
    (* The static Chen-style bound needs the transitive closure; when
       the caller has none (stand-alone trackers), all-zero tables keep
       the prune test trivially true-negative. Never computed here: the
       engine's "one closure per region" accounting must not see extra
       [Ddg.Closure.compute] calls. *)
    match closure with
    | Some c ->
        ( Ddg.Lower_bounds.min_reg_lb c graph Ir.Reg.Vgpr,
          Ddg.Lower_bounds.min_reg_lb c graph Ir.Reg.Sgpr )
    | None -> (Array.make n 0, Array.make n 0)
  in
  {
    graph;
    cls;
    use_ids;
    def_ids;
    defs_v;
    defs_s;
    min_delta_v;
    min_delta_s;
    min_lb_v;
    min_lb_s;
    total_uses;
    live_out;
    live_in;
    nregs;
  }

let int_demand layout = (2 * layout.nregs) + 8

let reset t =
  let l = t.layout in
  let buf = t.buf in
  Array.blit l.total_uses 0 buf t.rem_base l.nregs;
  buf.(t.cur_base) <- 0;
  buf.(t.cur_base + 1) <- 0;
  for i = 0 to l.nregs - 1 do
    if l.live_in.(i) then begin
      buf.(t.live_base + i) <- 1;
      let c = rank l.cls.(i) in
      buf.(t.cur_base + c) <- buf.(t.cur_base + c) + 1
    end
    else buf.(t.live_base + i) <- 0
  done;
  buf.(t.peak_base) <- buf.(t.cur_base);
  buf.(t.peak_base + 1) <- buf.(t.cur_base + 1)

let create_in arena layout =
  let base = Support.Arena.alloc_ints arena (int_demand layout) in
  let t =
    {
      layout;
      buf = Support.Arena.ints arena;
      rem_base = base;
      live_base = base + layout.nregs;
      cur_base = base + (2 * layout.nregs);
      peak_base = base + (2 * layout.nregs) + 2;
      eff_base = base + (2 * layout.nregs) + 4;
      prune = false;
      scored = 0;
      pruned = 0;
    }
  in
  reset t;
  t

let create graph =
  let layout = layout_of_graph graph in
  let arena = Support.Arena.create ~ints:(int_demand layout) ~floats:0 in
  create_in arena layout

let copy t =
  let buf = Array.copy t.buf in
  (* A private copy keeps the source's offsets but its own backing, so
     the two trackers evolve independently even when the source lives in
     a shared arena. *)
  { t with buf }

(* Plain counted loops, not [Array.iter]: an iterated closure capturing
   [t] is a fresh minor-heap block per call, and [schedule] runs once per
   emitted instruction in the ant hot loop. The loop bodies are verbatim
   the old closure bodies. *)
let schedule t i =
  let l = t.layout in
  let buf = t.buf in
  let uses = l.use_ids.(i) and defs = l.def_ids.(i) in
  for k = 0 to Array.length uses - 1 do
    let ui = Array.unsafe_get uses k in
    buf.(t.rem_base + ui) <- buf.(t.rem_base + ui) - 1;
    if buf.(t.rem_base + ui) = 0 && (not l.live_out.(ui)) && buf.(t.live_base + ui) = 1
    then begin
      buf.(t.live_base + ui) <- 0;
      let c = rank l.cls.(ui) in
      buf.(t.cur_base + c) <- buf.(t.cur_base + c) - 1
    end
  done;
  for k = 0 to Array.length defs - 1 do
    let di = Array.unsafe_get defs k in
    if buf.(t.live_base + di) = 0 then begin
      buf.(t.live_base + di) <- 1;
      let c = rank l.cls.(di) in
      buf.(t.cur_base + c) <- buf.(t.cur_base + c) + 1
    end
  done;
  if buf.(t.cur_base) > buf.(t.peak_base) then buf.(t.peak_base) <- buf.(t.cur_base);
  if buf.(t.cur_base + 1) > buf.(t.peak_base + 1) then
    buf.(t.peak_base + 1) <- buf.(t.cur_base + 1);
  (* A def with no remaining uses and not live-out dies immediately after
     being counted at this instruction's point. *)
  for k = 0 to Array.length defs - 1 do
    let di = Array.unsafe_get defs k in
    if buf.(t.rem_base + di) = 0 && (not l.live_out.(di)) && buf.(t.live_base + di) = 1
    then begin
      buf.(t.live_base + di) <- 0;
      let c = rank l.cls.(di) in
      buf.(t.cur_base + c) <- buf.(t.cur_base + c) - 1
    end
  done

let current t cls = t.buf.(t.cur_base + rank cls)
let peak t cls = t.buf.(t.peak_base + rank cls)

let peak_excess t ~target_vgpr ~target_sgpr =
  (max 0 (t.buf.(t.peak_base) - target_vgpr), max 0 (t.buf.(t.peak_base + 1) - target_sgpr))

(* One-pass, allocation-free analysis of scheduling [i]: per class, the
   live ranges it would close and open. Duplicate uses of one register in
   the same instruction are counted by multiplicity with a quadratic scan
   (Def/Use sets are tiny). Results land in the tracker's own arena slice
   at [eff_base] (closed_v; opened_v; closed_s; opened_s) — per-tracker,
   not module-global, so colonies on different domains never share it. *)

let compute_effects t i =
  let l = t.layout in
  let buf = t.buf in
  let e = t.eff_base in
  Array.fill buf e 4 0;
  let uses = l.use_ids.(i) and defs = l.def_ids.(i) in
  let n_uses = Array.length uses in
  for k = 0 to n_uses - 1 do
    let ui = uses.(k) in
    (* multiplicity of ui among uses.(0..k) *)
    let mult = ref 0 in
    for j = 0 to k do
      if uses.(j) = ui then incr mult
    done;
    if buf.(t.rem_base + ui) = !mult && (not l.live_out.(ui)) && buf.(t.live_base + ui) = 1
    then begin
      (* this occurrence is the last outstanding use *)
      let last_occurrence = ref true in
      for j = k + 1 to n_uses - 1 do
        if uses.(j) = ui then last_occurrence := false
      done;
      if !last_occurrence then
        let c = rank l.cls.(ui) in
        buf.(e + (2 * c)) <- buf.(e + (2 * c)) + 1
    end
  done;
  Array.iter
    (fun di ->
      if buf.(t.live_base + di) = 0 then begin
        (* already-opened within this instruction? defs are unique *)
        let c = rank l.cls.(di) in
        buf.(e + (2 * c) + 1) <- buf.(e + (2 * c) + 1) + 1
      end)
    defs

let delta_if_scheduled t i cls =
  compute_effects t i;
  let c = rank cls in
  t.buf.(t.eff_base + (2 * c) + 1) - t.buf.(t.eff_base + (2 * c))

let peak_if_scheduled t i cls =
  compute_effects t i;
  let c = rank cls in
  max t.buf.(t.peak_base + c)
    (t.buf.(t.cur_base + c)
    - t.buf.(t.eff_base + (2 * c))
    + t.buf.(t.eff_base + (2 * c) + 1))

let fits_within t i ~target_vgpr ~target_sgpr =
  let l = t.layout in
  let buf = t.buf in
  (* Fast path: the post-schedule pressure is at most cur + defs of the
     class (every open is a def; closes only lower it), so when even
     that bound fits there is no need to scan the registers. With the
     generous targets of early ILP iterations this covers almost every
     candidate. *)
  if
    max buf.(t.peak_base) (buf.(t.cur_base) + l.defs_v.(i)) <= target_vgpr
    && max buf.(t.peak_base + 1) (buf.(t.cur_base + 1) + l.defs_s.(i)) <= target_sgpr
  then true
  else begin
    compute_effects t i;
    let e = t.eff_base in
    let v = max buf.(t.peak_base) (buf.(t.cur_base) - buf.(e) + buf.(e + 1)) in
    let s = max buf.(t.peak_base + 1) (buf.(t.cur_base + 1) - buf.(e + 2) + buf.(e + 3)) in
    v <= target_vgpr && s <= target_sgpr
  end

(* Stable in-place filter: compact the candidates of [cand.(0..n_cand-1)]
   that fit the targets into the prefix, preserving order, and return
   their count. Equivalent to testing [fits_within] on each candidate,
   with the pressure loads hoisted out of the loop.

   Shape notes for the hot loop:
   - Mask-and-select compaction: the candidate is stored at the write
     cursor unconditionally and the cursor advances by a computed 0/1
     bit. Positions below the cursor are already-kept candidates and the
     cursor never passes the read index, so the blind store can only
     touch consumed or duplicate cells — no taken/not-taken branch on
     the common path.
   - The in-range tests fold into sign bits: [a <= b] for the small
     pressure integers here is the sign of [b - a], and two tests OR
     into one word whose sign is extracted with [asr 62] (any negative
     63-bit int has that bit set).
   - Pruning, when armed: a candidate that misses the defs-bound fast
     path is first tested against the layout's sound lower bounds
     ([min_lb]: static Chen bound on unavoidable pressure at its issue
     point; [cur + min_delta]: certain opens minus potential closes).
     Either bound exceeding a target proves [fits_within] false, so the
     quadratic [compute_effects] scan is skipped and the candidate is
     dropped — same prefix, same count, strictly less work. [scored]
     and [pruned] meter exactly that. *)
let filter_fits_prefix t ~cand ~n_cand ~target_vgpr ~target_sgpr =
  let l = t.layout in
  let buf = t.buf in
  let e = t.eff_base in
  let pv = buf.(t.peak_base) and ps = buf.(t.peak_base + 1) in
  let cv = buf.(t.cur_base) and cs = buf.(t.cur_base + 1) in
  if pv > target_vgpr || ps > target_sgpr then 0
    (* the peak already exceeds a target: nothing can fit *)
  else begin
    let m = ref 0 in
    let scored = ref 0 in
    let pruned = ref 0 in
    let prune = t.prune in
    for k = 0 to n_cand - 1 do
      let i = Array.unsafe_get cand k in
      let fast =
        (target_vgpr - cv - Array.unsafe_get l.defs_v i)
        lor (target_sgpr - cs - Array.unsafe_get l.defs_s i)
      in
      let bit =
        if fast >= 0 then begin
          incr scored;
          1
        end
        else if
          prune
          && (Array.unsafe_get l.min_lb_v i > target_vgpr
             || Array.unsafe_get l.min_lb_s i > target_sgpr
             || cv + Array.unsafe_get l.min_delta_v i > target_vgpr
             || cs + Array.unsafe_get l.min_delta_s i > target_sgpr)
        then begin
          incr pruned;
          0
        end
        else begin
          incr scored;
          compute_effects t i;
          let d =
            (target_vgpr - cv + buf.(e) - buf.(e + 1))
            lor (target_sgpr - cs + buf.(e + 2) - buf.(e + 3))
          in
          1 + (d asr 62)
        end
      in
      Array.unsafe_set cand !m i;
      m := !m + bit
    done;
    t.scored <- t.scored + !scored;
    t.pruned <- t.pruned + !pruned;
    !m
  end

let set_prune t flag = t.prune <- flag
let prune_enabled t = t.prune
let scored_candidates t = t.scored
let pruned_candidates t = t.pruned

let closes_count t i =
  compute_effects t i;
  let e = t.eff_base in
  t.buf.(e) + t.buf.(e + 2)

let opens_count t i =
  compute_effects t i;
  let e = t.eff_base in
  t.buf.(e + 1) + t.buf.(e + 3)

let closes_minus_opens t i =
  (* One effects pass instead of two; same integer as
     [closes_count t i - opens_count t i]. *)
  compute_effects t i;
  let e = t.eff_base in
  t.buf.(e) + t.buf.(e + 2) - t.buf.(e + 1) - t.buf.(e + 3)

(* Independent reference implementation over live-range intervals; assumes
   single-definition registers (all generated workloads are SSA-like).
   A register is live at point p (the point just after the instruction at
   position p; p = -1 is region entry) iff it was born at or before p and
   either is live-out, or still has a use after p, or is a dead def born
   exactly at p. *)
let naive_peaks (graph : Ddg.Graph.t) order =
  let region = graph.region in
  let pos = Array.make graph.n 0 in
  Array.iteri (fun p i -> pos.(i) <- p) order;
  let births : (Ir.Reg.t, int) Hashtbl.t = Hashtbl.create 64 in
  let deaths : (Ir.Reg.t, int) Hashtbl.t = Hashtbl.create 64 in
  let has_uses : (Ir.Reg.t, unit) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (ins : Ir.Instr.t) ->
      let p = pos.(ins.id) in
      List.iter
        (fun d ->
          match Hashtbl.find_opt births d with
          | Some b -> if p < b then Hashtbl.replace births d p
          | None -> Hashtbl.add births d p)
        ins.defs;
      List.iter
        (fun u ->
          Hashtbl.replace has_uses u ();
          match Hashtbl.find_opt deaths u with
          | Some dth -> if p > dth then Hashtbl.replace deaths u p
          | None -> Hashtbl.add deaths u p)
        ins.uses)
    (region : Ir.Region.t).instrs;
  let live_out r = Ir.Region.is_live_out region r in
  let all_regs =
    Hashtbl.fold (fun r _ acc -> r :: acc) has_uses []
    |> List.append (Hashtbl.fold (fun r _ acc -> r :: acc) births [])
    |> List.sort_uniq Ir.Reg.compare
  in
  let live_at r p =
    let birth = Option.value (Hashtbl.find_opt births r) ~default:(-1) in
    if birth > p then false
    else if live_out r then true
    else
      match Hashtbl.find_opt deaths r with
      | Some d -> d > p
      | None -> p = birth (* dead def: live only at its own point *)
  in
  let peaks = [| 0; 0 |] in
  for p = -1 to Array.length order - 1 do
    let counts = [| 0; 0 |] in
    List.iter
      (fun (r : Ir.Reg.t) -> if live_at r p then counts.(rank r.cls) <- counts.(rank r.cls) + 1)
      all_regs;
    peaks.(0) <- max peaks.(0) counts.(0);
    peaks.(1) <- max peaks.(1) counts.(1)
  done;
  fun cls -> peaks.(rank cls)
