(** The pluggable register-pressure term of the two-pass objective.

    {!Cliff} is the paper's objective: {!Cost.rp_scalar} (occupancy
    dominates, APRP breaks ties) in pass 1 and the pass-1 APRP peaks as
    hard per-class ceilings in pass 2. {!Spill} prices excess pressure
    instead of forbidding it (RegDem, arXiv 1907.02894): at a fixed
    target occupancy, every register above a class's allowance is
    assumed spilled and charges a modeled round-trip memory cost; pass 2
    then runs unconstrained, because the spill term already paid for the
    pressure. Backends declare their objective via
    [Engine.Backend.S.objective]; [Gpusim.Mem_model.spill_model] derives
    a {!spill_model} from a machine configuration. *)

type spill_model = {
  target_occupancy : int;
      (** Waves/SIMD the model prices pressure against (the occupancy
          the compiler is told to hit, not the one a schedule happens to
          achieve). *)
  allow_vgpr : int;
      (** Per-class register allowance at [target_occupancy]
          ([Machine.Occupancy.max_pressure_for]); APRP above it counts
          as spilled. *)
  allow_sgpr : int;
  vgpr_spill_cycles : int;  (** Modeled cycles per spilled register. *)
  sgpr_spill_cycles : int;
}

type t = Cliff | Spill of spill_model

val to_string : t -> string

val no_target : int
(** Pass-2 pressure target meaning "unconstrained" — far above any
    register-file size. *)

val rp_scalar : t -> Cost.rp -> int
(** Pass-1 cost of an RP measurement. {!Cliff} is exactly
    {!Cost.rp_scalar}; {!Spill} is APRP sum plus the priced spill
    traffic of the per-class excess over the allowances. Smaller is
    better for both. *)

val breach_targets : t -> Cost.rp -> int * int
(** [(target_vgpr, target_sgpr)] pass 2 must respect, given the best
    pass-1 RP. {!Cliff} hands down the APRP peaks; {!Spill} returns
    [(no_target, no_target)]. *)

val spill_cycles : t -> vgpr:int -> sgpr:int -> int
(** Priced spill traffic of raw class peaks (0 under {!Cliff}) —
    diagnostics and report attribution. *)
