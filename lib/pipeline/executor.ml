(* The execute layer of the compile service: a suite becomes a flat list
   of independent region jobs, the jobs fan out over OCaml domains, and
   the reports are merged back by index.

   Determinism comes from the split of responsibilities, not from luck:
   everything a job's outcome may depend on — its name, its source
   region, its budget, its backend seeds, its (optional) precomputed
   analysis context — is fixed on the job record before any domain
   starts, and [Compile.run_region] is a pure function of those inputs.
   Which domain runs a job, and in which order jobs are claimed, can
   then only change scheduling, never results; the merge step reassembles
   kernel reports in suite order, so the suite report is canonically
   identical to a sequential compile (see [Report_digest]). *)

type job = {
  j_index : int;
  j_kernel : int;
  j_name : string;
  j_region : Ir.Region.t;
  j_budget_ns : float;
  j_seq_seed : int;
  j_par_seed : int;
}

let jobs_of_suite (config : Compile.config) (suite : Workload.Suite.t) =
  let jobs = ref [] in
  let index = ref 0 in
  List.iteri
    (fun ki (k : Workload.Suite.kernel) ->
      List.iteri
        (fun ri region ->
          let n = Ir.Region.size region in
          jobs :=
            {
              j_index = !index;
              j_kernel = ki;
              j_name = Printf.sprintf "%s/r%d" k.Workload.Suite.kernel_name ri;
              j_region = region;
              j_budget_ns = Robust.budget_for config.Compile.robust ~n;
              j_seq_seed = config.Compile.seq_seed;
              j_par_seed = config.Compile.par_seed;
            }
            :: !jobs;
          incr index)
        k.Workload.Suite.regions)
    suite.Workload.Suite.kernels;
  Array.of_list (List.rev !jobs)

let run_job ?trace ?(metrics = Obs.Metrics.null) ?cache (config : Compile.config) job =
  let ctx =
    Option.map (fun cache -> Analysis.get cache config.Compile.occ job.j_region) cache
  in
  let config =
    { config with Compile.seq_seed = job.j_seq_seed; par_seed = job.j_par_seed }
  in
  Compile.run_region ?trace ~metrics ?ctx ~budget_ns:job.j_budget_ns config
    ~name:job.j_name job.j_region

let run_suite ?(jobs = 1) ?(progress = fun _ -> ()) ?(trace = Obs.Trace.null)
    ?(metrics = Obs.Metrics.null) ?cache (config : Compile.config)
    (suite : Workload.Suite.t) =
  let jobs = max 1 jobs in
  Compile.ensure_backends ();
  let work = jobs_of_suite config suite in
  let njobs = Array.length work in
  let results : Compile.region_report option array = Array.make njobs None in
  (* The flight-recorder ring buffer is single-writer, so tracing a
     multi-domain run cannot work. Refusing loudly beats the old
     behavior (silently dropping the trace): a caller who asked for a
     flight recording must not discover an empty ring after the run. *)
  if jobs > 1 && Obs.Trace.enabled trace then
    invalid_arg
      "Executor.run_suite: tracing is single-writer; use --jobs 1 (or drop \
       --trace)";
  let claim = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add claim 1 in
      if i < njobs then begin
        results.(i) <- Some (run_job ~trace ~metrics ?cache config work.(i));
        loop ()
      end
    in
    loop ()
  in
  let helpers =
    Array.init (min (jobs - 1) (max 0 (njobs - 1))) (fun _ -> Domain.spawn worker)
  in
  worker ();
  Array.iter Domain.join helpers;
  let report_of i =
    match results.(i) with
    | Some r -> r
    | None -> invalid_arg "Executor.run_suite: job finished without a report"
  in
  (* Merge by index: [work] was built in suite order, so consecutive
     indices within one kernel are its regions in order. *)
  let cursor = ref 0 in
  let kernels =
    List.map
      (fun (k : Workload.Suite.kernel) ->
        progress k.Workload.Suite.kernel_name;
        let regions =
          List.map
            (fun _ ->
              let r = report_of !cursor in
              incr cursor;
              r)
            k.Workload.Suite.regions
        in
        { Compile.kernel = k; regions })
      suite.Workload.Suite.kernels
  in
  {
    Compile.suite;
    compile_config = config;
    kernels;
  }
