(* All per-list state lives as seven n-sized segments of a flat int
   backing array (a caller-supplied arena or a private buffer), so a
   whole colony's ready lists come from one batched allocation
   (Section V-A). The pending set — instructions waiting only on
   latency — is a flat sorted window [pend_head, pend_tail) of the
   (cycle, instr) segment pair: each instruction enters pending at most
   once per reset, so n slots never overflow and the head only
   advances. *)

type t = {
  graph : Ddg.Graph.t;
  latency_aware : bool;
  buf : int array;
  unsched_preds : int;  (* base offsets into [buf], n entries each *)
  earliest : int;  (* valid once unsched_preds reaches 0 *)
  sched_cycle : int;  (* -1 if unscheduled *)
  ready_base : int;  (* compact prefix of length ready_n *)
  pos_in_ready : int;  (* -1 when not in ready *)
  pend_cycle : int;  (* sorted window [pend_head, pend_tail) *)
  pend_instr : int;
  mutable ready_n : int;
  mutable pend_head : int;
  mutable pend_tail : int;
  mutable cycle : int;
  mutable scheduled_n : int;
}

let int_demand (graph : Ddg.Graph.t) = 7 * graph.n

let setup t =
  let n = t.graph.Ddg.Graph.n in
  let buf = t.buf in
  for i = 0 to n - 1 do
    buf.(t.unsched_preds + i) <- Ddg.Graph.num_preds t.graph i;
    buf.(t.earliest + i) <- 0;
    buf.(t.sched_cycle + i) <- -1;
    buf.(t.pos_in_ready + i) <- -1
  done;
  t.ready_n <- 0;
  t.pend_head <- 0;
  t.pend_tail <- 0;
  t.cycle <- 0;
  t.scheduled_n <- 0;
  for i = 0 to n - 1 do
    if buf.(t.unsched_preds + i) = 0 then begin
      buf.(t.ready_base + t.ready_n) <- i;
      buf.(t.pos_in_ready + i) <- t.ready_n;
      t.ready_n <- t.ready_n + 1
    end
  done

let create_in ?(latency_aware = true) arena (graph : Ddg.Graph.t) =
  let n = graph.n in
  let base = Support.Arena.alloc_ints arena (7 * n) in
  let t =
    {
      graph;
      latency_aware;
      buf = Support.Arena.ints arena;
      unsched_preds = base;
      earliest = base + n;
      sched_cycle = base + (2 * n);
      ready_base = base + (3 * n);
      pos_in_ready = base + (4 * n);
      pend_cycle = base + (5 * n);
      pend_instr = base + (6 * n);
      ready_n = 0;
      pend_head = 0;
      pend_tail = 0;
      cycle = 0;
      scheduled_n = 0;
    }
  in
  setup t;
  t

let create ?latency_aware (graph : Ddg.Graph.t) =
  let arena = Support.Arena.create ~ints:(int_demand graph) ~floats:0 in
  create_in ?latency_aware arena graph

let reset = setup

let current_cycle t = t.cycle
let ready_count t = t.ready_n
let ready t k = t.buf.(t.ready_base + k)

(* Candidate-list view for the ant hot loop: one [Array.blit] of the
   compact ready prefix instead of a per-candidate [ready] call. The
   caller bounds [m] by [ready_count] (or its ready-limit truncation). *)
let blit_ready t cand m = Array.blit t.buf t.ready_base cand 0 m

let ready_list t =
  let rec loop k acc = if k < 0 then acc else loop (k - 1) (t.buf.(t.ready_base + k) :: acc) in
  loop (t.ready_n - 1) []

let semi_ready t =
  let rec loop p acc =
    if p < t.pend_head then acc
    else loop (p - 1) ((t.buf.(t.pend_instr + p), t.buf.(t.pend_cycle + p)) :: acc)
  in
  loop (t.pend_tail - 1) []

let min_semi_ready_cycle t =
  if t.pend_head = t.pend_tail then None else Some t.buf.(t.pend_cycle + t.pend_head)

let has_semi_ready t = t.pend_head <> t.pend_tail

let push_ready t i =
  t.buf.(t.ready_base + t.ready_n) <- i;
  t.buf.(t.pos_in_ready + i) <- t.ready_n;
  t.ready_n <- t.ready_n + 1

let remove_ready t i =
  let p = t.buf.(t.pos_in_ready + i) in
  if p < 0 then invalid_arg "Ready_list: instruction is not ready";
  let last = t.ready_n - 1 in
  let moved = t.buf.(t.ready_base + last) in
  t.buf.(t.ready_base + p) <- moved;
  t.buf.(t.pos_in_ready + moved) <- p;
  t.ready_n <- last;
  t.buf.(t.pos_in_ready + i) <- -1

(* Insert (c, i) keeping the window sorted by cycle; among equal cycles
   the new element goes first, matching the [fst x <= fst y] tie-break of
   the seed's sorted-list insert (the promotion order is part of the
   construction's byte-identity contract). *)
let insert_pending t c i =
  let buf = t.buf in
  let p = ref t.pend_head in
  while !p < t.pend_tail && buf.(t.pend_cycle + !p) < c do
    incr p
  done;
  let q = ref t.pend_tail in
  while !q > !p do
    buf.(t.pend_cycle + !q) <- buf.(t.pend_cycle + !q - 1);
    buf.(t.pend_instr + !q) <- buf.(t.pend_instr + !q - 1);
    decr q
  done;
  buf.(t.pend_cycle + !p) <- c;
  buf.(t.pend_instr + !p) <- i;
  t.pend_tail <- t.pend_tail + 1

let promote t =
  (* Move pending instructions whose ready cycle has arrived. *)
  let buf = t.buf in
  while t.pend_head < t.pend_tail && buf.(t.pend_cycle + t.pend_head) <= t.cycle do
    push_ready t buf.(t.pend_instr + t.pend_head);
    t.pend_head <- t.pend_head + 1
  done

let schedule t i =
  remove_ready t i;
  let buf = t.buf in
  buf.(t.sched_cycle + i) <- t.cycle;
  t.scheduled_n <- t.scheduled_n + 1;
  (* Counted loop, not [Array.iter]: the closure would capture [t] and
     allocate once per scheduled instruction — this is the single
     hottest successor walk in the system. Destructuring the edge tuple
     reads its fields in place; no allocation. *)
  let succs = t.graph.Ddg.Graph.succs.(i) in
  for k = 0 to Array.length succs - 1 do
    let j, lat = Array.unsafe_get succs k in
    buf.(t.unsched_preds + j) <- buf.(t.unsched_preds + j) - 1;
    let lat = if t.latency_aware then max lat 1 else 1 in
    if t.cycle + lat > buf.(t.earliest + j) then buf.(t.earliest + j) <- t.cycle + lat;
    if buf.(t.unsched_preds + j) = 0 then
      (* Queue with its ready cycle; [promote] moves it across once the
         current cycle reaches that point. *)
      insert_pending t buf.(t.earliest + j) j
  done;
  t.cycle <- t.cycle + 1;
  promote t

let stall t =
  t.cycle <- t.cycle + 1;
  promote t

let scheduled_count t = t.scheduled_n
let finished t = t.scheduled_n = t.graph.Ddg.Graph.n
