(* Shared test utilities: deterministic random regions and common
   fixtures. *)

let occ = Machine.Occupancy.default

(* A small diamond with a long-latency load at the top:
     s0 = s_load          (latency 6)
     a  = v_load [s0]     (latency 12)
     b  = v_alu  [a]
     c  = v_alu  [a]
     d  = v_alu  [b; c]
     store d *)
let diamond_region () =
  let b = Ir.Builder.create ~name:"diamond" in
  let s0 = Ir.Builder.sload b ~addr:[] () in
  let a = Ir.Builder.vload b ~addr:[ s0 ] () in
  let x = Ir.Builder.valu b [ a ] in
  let y = Ir.Builder.valu b [ a ] in
  let d = Ir.Builder.valu b [ x; y ] in
  Ir.Builder.vstore b ~data:[ d ] ~addr:[ s0 ] ();
  Ir.Builder.finish b

(* Deterministic random SSA region driven by our own RNG. *)
let random_region ?(max_size = 40) seed =
  let rng = Support.Rng.create seed in
  let b = Ir.Builder.create ~name:(Printf.sprintf "rand%d" seed) in
  let n = 2 + Support.Rng.int rng (max 1 (max_size - 2)) in
  (* the seed register is live-in: it is used before any definition *)
  let live_in = Ir.Builder.fresh_vgpr b in
  let vpool = ref [ Ir.Builder.valu b [ live_in ]; live_in ] in
  let spool = ref [] in
  let pick pool =
    let arr = Array.of_list pool in
    Support.Rng.choose rng arr
  in
  let uses_from pool k =
    List.init k (fun _ -> pick pool)
  in
  for _i = 1 to n do
    let r = Support.Rng.float rng in
    if r < 0.35 then begin
      let k = 1 + Support.Rng.int rng (min 3 (List.length !vpool)) in
      let d = Ir.Builder.valu b (uses_from !vpool k) in
      vpool := d :: !vpool
    end
    else if r < 0.5 then begin
      let addr = if !spool = [] then [] else [ pick !spool ] in
      let d = Ir.Builder.vload b ~addr () in
      vpool := d :: !vpool
    end
    else if r < 0.62 then begin
      let addr = if !spool = [] then [] else [ pick !spool ] in
      let d = Ir.Builder.sload b ~addr () in
      spool := d :: !spool
    end
    else if r < 0.74 && !spool <> [] then begin
      let d = Ir.Builder.salu b [ pick !spool ] in
      spool := d :: !spool
    end
    else if r < 0.86 then
      Ir.Builder.vstore b ~data:[ pick !vpool ] ~addr:[ pick !vpool ] ()
    else begin
      let d = Ir.Builder.lds_read b ~addr:[ pick !vpool ] () in
      vpool := d :: !vpool
    end
  done;
  (match !vpool with v :: _ -> Ir.Builder.mark_live_out b v | [] -> ());
  Ir.Builder.finish b

let arb_region ?max_size () =
  QCheck.make
    ~print:(fun r -> Ir.Region.to_string r)
    (QCheck.Gen.map (fun seed -> random_region ?max_size (abs seed)) QCheck.Gen.int)

let arb_graph ?max_size () =
  QCheck.make
    ~print:(fun g -> Ir.Region.to_string g.Ddg.Graph.region)
    (QCheck.Gen.map (fun seed -> Ddg.Graph.build (random_region ?max_size (abs seed))) QCheck.Gen.int)

let check_valid ?(latency_aware = true) schedule =
  match Sched.Schedule.validate schedule ~latency_aware with
  | Ok () -> true
  | Error v -> Alcotest.failf "invalid schedule: %s" (Sched.Schedule.violation_to_string v)

let qtests cases = List.map QCheck_alcotest.to_alcotest cases

(* Fast ACO parameters for tests. *)
let test_params = { Aco.Params.default with Aco.Params.ants_per_iteration = 24; max_iterations = 8 }

let test_gpu = { Gpusim.Config.bench with Gpusim.Config.num_wavefronts = 2 }
